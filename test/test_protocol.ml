(* Integration tests: the full Meerkat deployment (replicas, network,
   coordinators) under the simulator — correctness of outcomes,
   serializability of committed histories, message loss, crashes and
   epoch changes. *)

module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module S = Mk_meerkat.Sim_system
module Replica = Mk_meerkat.Replica
module Checker = Mk_harness.Checker
module Batch = Mk_meerkat.Batch

let base_cfg =
  { S.default_config with threads = 4; n_clients = 16; keys = 256; seed = 5 }

let make ?(cfg = base_cfg) () =
  let engine = Engine.create ~seed:cfg.S.seed () in
  (engine, S.create engine cfg)

(* Run [n] transactions per client, closed-loop; returns the outcomes
   in completion order. *)
let run_txns engine sys ~clients ~per_client ~request =
  let outcomes = ref [] in
  let rec loop c remaining =
    if remaining > 0 then begin
      let req = request c remaining in
      S.submit sys ~client:c req ~on_done:(fun ~committed ->
          outcomes := (c, remaining, committed) :: !outcomes;
          loop c (remaining - 1))
    end
  in
  for c = 0 to clients - 1 do
    loop c per_client
  done;
  Engine.run ~max_events:50_000_000 engine;
  List.rev !outcomes

let test_single_txn_commits () =
  let engine, sys = make () in
  let result = ref None in
  S.submit sys ~client:0
    { Intf.reads = [| 7 |]; writes = [| (7, 99) |] }
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "committed" (Some true) !result;
  (* All three replicas applied the write. *)
  for r = 0 to 2 do
    Alcotest.(check (option int))
      (Printf.sprintf "replica %d" r)
      (Some 99)
      (S.read_committed sys ~replica:r ~key:7)
  done;
  Alcotest.(check int) "fast path" 1 (S.counters sys).Intf.fast_path

let test_read_only_txn () =
  let engine, sys = make () in
  let result = ref None in
  S.submit sys ~client:0
    { Intf.reads = [| 1; 2; 3 |]; writes = [||] }
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "read-only commits" (Some true) !result

let test_blind_write_txn () =
  let engine, sys = make () in
  let result = ref None in
  S.submit sys ~client:0
    { Intf.reads = [||]; writes = [| (300, 1) |] }
    (* key 300 was never loaded *)
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "blind write commits" (Some true) !result;
  Alcotest.(check (option int)) "created on replica" (Some 1)
    (S.read_committed sys ~replica:1 ~key:300)

let test_non_conflicting_txns_all_commit () =
  let engine, sys = make () in
  let outcomes =
    run_txns engine sys ~clients:8 ~per_client:20 ~request:(fun c i ->
        let key = (c * 20) + i in
        { Intf.reads = [| key |]; writes = [| (key, i) |] })
  in
  Alcotest.(check int) "all done" 160 (List.length outcomes);
  List.iter
    (fun (_, _, committed) ->
      Alcotest.(check bool) "disjoint txns commit" true committed)
    outcomes;
  Alcotest.(check int) "no aborts" 0 (S.counters sys).Intf.aborted

let test_replicas_converge () =
  let engine, sys = make () in
  ignore
    (run_txns engine sys ~clients:8 ~per_client:25 ~request:(fun c i ->
         let rng = (c * 31) + (i * 17) in
         let key = rng mod 64 in
         { Intf.reads = [| key |]; writes = [| (key, rng) |] }));
  (* Let write-phase messages drain, then compare all replica stores. *)
  Engine.run engine;
  for key = 0 to 63 do
    let v0 = S.read_committed sys ~replica:0 ~key in
    let v1 = S.read_committed sys ~replica:1 ~key in
    let v2 = S.read_committed sys ~replica:2 ~key in
    Alcotest.(check bool)
      (Printf.sprintf "key %d converged" key)
      true
      (v0 = v1 && v1 = v2)
  done

(* Collect every commit acknowledged to a client, with read versions,
   and check one-copy serializability. *)
let serializability_run ~cfg ~clients ~per_client ~key_range =
  let engine = Engine.create ~seed:cfg.S.seed () in
  let sys = S.create engine cfg in
  let committed = ref [] in
  let rec loop c remaining =
    if remaining > 0 then begin
      let key = ((c * 7919) + (remaining * 104729)) mod key_range in
      let key2 = ((c * 31) + (remaining * 997)) mod key_range in
      S.submit sys ~client:c
        { Intf.reads = [| key; key2 |]; writes = [| (key, remaining) |] }
        ~on_done:(fun ~committed:_ -> loop c (remaining - 1))
    end
  in
  (* Hook commits via the replicas' trecords after the run instead:
     the coordinator does not expose its txn, so reconstruct the
     committed set from any replica's record — but a replica may lack
     some commits. Instead, we re-drive with an instrumented client:
     read results are not externally visible, so we use the trecord of
     the replica that is guaranteed complete... Simpler and sound: use
     the union of all replicas' COMMITTED records (every committed txn
     reached at least one replica's trecord as COMMITTED because the
     write-phase message is broadcast and nothing is dropped here). *)
  for c = 0 to clients - 1 do
    loop c per_client
  done;
  Engine.run ~max_events:50_000_000 engine;
  let seen = Hashtbl.create 1024 in
  Array.iter
    (fun r ->
      List.iter
        (fun (_, (e : Mk_storage.Trecord.entry)) ->
          if e.status = Txn.Committed && not (Hashtbl.mem seen e.txn.Txn.tid) then begin
            Hashtbl.add seen e.txn.Txn.tid ();
            committed := (e.txn, e.ts) :: !committed
          end)
        (Mk_storage.Trecord.entries (Replica.trecord r)))
    (S.replicas sys);
  !committed

let test_serializable_low_contention () =
  let committed =
    serializability_run ~cfg:base_cfg ~clients:8 ~per_client:30 ~key_range:256
  in
  Alcotest.(check bool) "some commits" true (List.length committed > 100);
  match Checker.check committed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "violation: %s" (Format.asprintf "%a" Checker.pp_violation v)

let test_serializable_high_contention () =
  (* 16 clients fighting over 4 keys: plenty of aborts, and whatever
     commits must still be serializable. *)
  let cfg = { base_cfg with keys = 4; seed = 23 } in
  let committed = serializability_run ~cfg ~clients:16 ~per_client:25 ~key_range:4 in
  Alcotest.(check bool) "some commits" true (List.length committed > 10);
  match Checker.check committed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "violation: %s" (Format.asprintf "%a" Checker.pp_violation v)

let test_serializable_with_clock_skew () =
  (* Huge clock skew: performance suffers, correctness must not. *)
  let cfg = { base_cfg with clock_offset = 5000.0; clock_drift = 0.01; seed = 31; keys = 8 } in
  let committed = serializability_run ~cfg ~clients:8 ~per_client:20 ~key_range:8 in
  match Checker.check committed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "violation: %s" (Format.asprintf "%a" Checker.pp_violation v)

let test_progress_under_message_loss () =
  (* 20% of messages silently dropped: retransmission must still drive
     every transaction to a decision. *)
  let cfg =
    {
      base_cfg with
      transport = Transport.with_drop Transport.erpc 0.2;
      n_clients = 4;
      seed = 77;
    }
  in
  let engine, sys = make ~cfg () in
  let outcomes =
    run_txns engine sys ~clients:4 ~per_client:10 ~request:(fun c i ->
        let key = (c * 16) + i in
        { Intf.reads = [| key |]; writes = [| (key, i) |] })
  in
  Alcotest.(check int) "every txn decided" 40 (List.length outcomes);
  Alcotest.(check bool) "retransmissions happened" true
    ((S.counters sys).Intf.retransmits > 0)

let test_slow_path_under_drops () =
  (* With validate messages being dropped, mixed/partial reply sets
     force the slow path at least occasionally. *)
  let cfg =
    {
      base_cfg with
      transport = Transport.with_drop Transport.erpc 0.3;
      n_clients = 8;
      keys = 8;
      seed = 13;
    }
  in
  let engine, sys = make ~cfg () in
  ignore
    (run_txns engine sys ~clients:8 ~per_client:15 ~request:(fun c i ->
         let key = (c + i) mod 8 in
         { Intf.reads = [| key |]; writes = [| (key, i) |] }));
  Alcotest.(check bool) "slow path exercised" true
    ((S.counters sys).Intf.slow_path > 0)

let test_survives_one_replica_crash () =
  (* n=3 tolerates f=1: after a crash, transactions still complete
     (on the slow path, since the fast quorum of 3 is unreachable). *)
  let engine, sys = make ~cfg:{ base_cfg with n_clients = 4 } () in
  let before = ref 0 and after = ref 0 in
  let rec loop phase c remaining =
    if remaining > 0 then begin
      (* Distinct key per transaction: a client's consecutive writes to
         one key would race its own asynchronous write-phase message
         and abort legitimately. *)
      let key = (c * 100) + remaining + (match phase with `Before -> 0 | `After -> 50) in
      S.submit sys ~client:c
        { Intf.reads = [| key |]; writes = [| (key, remaining) |] }
        ~on_done:(fun ~committed ->
          if committed then incr (if phase = `Before then before else after);
          loop phase c (remaining - 1))
    end
  in
  for c = 0 to 3 do
    loop `Before c 5
  done;
  Engine.run engine;
  S.crash_replica sys 2;
  for c = 0 to 3 do
    loop `After c 5
  done;
  Engine.run engine;
  Alcotest.(check int) "before crash" 20 !before;
  Alcotest.(check int) "after crash" 20 !after;
  (* All post-crash decisions took the slow path. *)
  Alcotest.(check bool) "slow path used" true ((S.counters sys).Intf.slow_path >= 20)

let test_no_progress_without_majority () =
  let engine, sys = make ~cfg:{ base_cfg with n_clients = 1 } () in
  S.crash_replica sys 1;
  S.crash_replica sys 2;
  let decided = ref false in
  S.submit sys ~client:0
    { Intf.reads = [| 0 |]; writes = [| (0, 1) |] }
    ~on_done:(fun ~committed:_ -> decided := true);
  (* Bound the run: retransmissions would otherwise go on forever. *)
  Engine.run ~until:100_000.0 engine;
  Alcotest.(check bool) "no decision without majority" false !decided

let test_epoch_change_recovers_replica () =
  let cfg = { base_cfg with n_clients = 4 } in
  let engine, sys = make ~cfg () in
  (* Phase 1: commit some transactions. *)
  ignore
    (run_txns engine sys ~clients:4 ~per_client:10 ~request:(fun c i ->
         let key = (c * 10) + i in
         { Intf.reads = [| key |]; writes = [| (key, i) |] }));
  (* Crash replica 0 (it loses everything), then run the epoch change
     to re-integrate it. *)
  S.crash_replica sys 0;
  Alcotest.(check bool) "epoch change succeeds" true
    (S.run_epoch_change sys ~recovering:[ 0 ]);
  (* The recovered replica has the committed state back. *)
  Alcotest.(check (option int)) "state transferred" (Some 1)
    (S.read_committed sys ~replica:0 ~key:1);
  Alcotest.(check int) "epoch advanced" 1 (Replica.epoch (S.replicas sys).(0));
  (* And the system keeps processing transactions afterwards. *)
  let outcomes =
    run_txns engine sys ~clients:4 ~per_client:5 ~request:(fun c i ->
        let key = 200 + ((c * 5) + i) mod 40 in
        { Intf.reads = [| key |]; writes = [| (key, i) |] })
  in
  Alcotest.(check int) "post-recovery txns decided" 20 (List.length outcomes)

let test_epoch_change_requires_majority () =
  let _, sys = make () in
  S.crash_replica sys 1;
  S.crash_replica sys 2;
  Alcotest.(check bool) "refused without majority" false
    (S.run_epoch_change sys ~recovering:[ 1; 2 ])

let test_epoch_change_decides_inflight () =
  (* Transactions interrupted by the epoch change are decided by the
     merge and never dangle: after the change, no replica holds a
     non-final record. *)
  let cfg = { base_cfg with n_clients = 8; keys = 16 } in
  let engine, sys = make ~cfg () in
  (* Start transactions but stop the engine mid-flight. *)
  for c = 0 to 7 do
    S.submit sys ~client:c
      { Intf.reads = [| c mod 16 |]; writes = [| (c mod 16, c) |] }
      ~on_done:(fun ~committed:_ -> ())
  done;
  Engine.run ~until:10.0 engine;
  (* Epoch change while validates are still in flight. *)
  Alcotest.(check bool) "epoch change ok" true (S.run_epoch_change sys ~recovering:[]);
  Array.iter
    (fun r ->
      List.iter
        (fun (_, (e : Mk_storage.Trecord.entry)) ->
          Alcotest.(check bool) "record final" true (Txn.is_final e.status))
        (Mk_storage.Trecord.entries (Replica.trecord r)))
    (S.replicas sys);
  (* Pending reader/writer marks were cleaned everywhere. *)
  Array.iter
    (fun r ->
      Alcotest.(check (pair int int)) "no pending marks" (0, 0)
        (Mk_storage.Vstore.pending_counts (Replica.vstore r)))
    (S.replicas sys)

let test_interactive_conservation () =
  (* Concurrent interactive increments of one shared counter key: the
     final value must equal the number of commits — writes computed
     from reads are only committed if the reads were current. *)
  let cfg = { base_cfg with n_clients = 8; keys = 4 } in
  let engine, sys = make ~cfg () in
  let commits = ref 0 in
  let rec bump c remaining =
    if remaining > 0 then
      S.submit_interactive sys ~client:c ~reads:[| 0 |]
        ~compute:(fun values -> [| (0, values.(0) + 1) |])
        ~on_done:(fun ~committed ->
          if committed then begin
            incr commits;
            bump c (remaining - 1)
          end
          else bump c remaining)
  in
  for c = 0 to 7 do
    bump c 10
  done;
  Engine.run ~max_events:20_000_000 engine;
  Alcotest.(check int) "all increments committed" 80 !commits;
  for r = 0 to 2 do
    Alcotest.(check (option int))
      (Printf.sprintf "replica %d counter" r)
      (Some 80)
      (S.read_committed sys ~replica:r ~key:0)
  done

let test_deterministic_runs () =
  let run () =
    let engine, sys = make () in
    let outcomes =
      run_txns engine sys ~clients:8 ~per_client:10 ~request:(fun c i ->
          let key = (c + i) mod 8 in
          { Intf.reads = [| key |]; writes = [| (key, i) |] })
    in
    (outcomes, Engine.now engine, (S.counters sys).Intf.committed)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_async_epoch_change () =
  (* The message-driven §5.3.1 protocol: crash, recover through the
     network, keep serving. *)
  let cfg = { base_cfg with n_clients = 4 } in
  let engine, sys = make ~cfg () in
  ignore
    (run_txns engine sys ~clients:4 ~per_client:10 ~request:(fun c i ->
         let key = (c * 10) + i in
         { Intf.reads = [| key |]; writes = [| (key, i) |] }));
  S.crash_replica sys 0;
  let completed = ref None in
  S.trigger_epoch_change sys ~recovering:[ 0 ] ~on_complete:(fun ~success ->
      completed := Some success);
  (* Submit transactions WHILE the epoch change is in flight: they are
     refused during the pause and retried by their coordinators. *)
  let during = ref 0 in
  for c = 0 to 3 do
    S.submit sys ~client:c
      { Intf.reads = [| 200 + c |]; writes = [| (200 + c, c) |] }
      ~on_done:(fun ~committed -> if committed then incr during)
  done;
  Engine.run ~until:1_000_000.0 engine;
  Alcotest.(check (option bool)) "epoch change completed" (Some true) !completed;
  Alcotest.(check int) "in-flight txns eventually commit" 4 !during;
  Alcotest.(check (option int)) "state transferred to replica 0" (Some 1)
    (S.read_committed sys ~replica:0 ~key:1);
  Alcotest.(check bool) "epoch advanced" true
    (Replica.epoch (S.replicas sys).(0) >= 1);
  (* Every replica resumed. *)
  Array.iter
    (fun r -> Alcotest.(check bool) "available" true (Replica.is_available r))
    (S.replicas sys)

let test_async_epoch_change_no_majority () =
  let engine, sys = make () in
  S.crash_replica sys 1;
  S.crash_replica sys 2;
  let completed = ref None in
  S.trigger_epoch_change sys ~recovering:[ 1; 2 ] ~on_complete:(fun ~success ->
      completed := Some success);
  Engine.run ~until:10_000.0 engine;
  Alcotest.(check (option bool)) "refused" (Some false) !completed

let test_async_epoch_change_under_drops () =
  (* Retransmission carries the epoch change through a lossy network. *)
  let cfg =
    { base_cfg with transport = Transport.with_drop Transport.erpc 0.25; n_clients = 2 }
  in
  let engine, sys = make ~cfg () in
  ignore
    (run_txns engine sys ~clients:2 ~per_client:5 ~request:(fun c i ->
         let key = (c * 5) + i in
         { Intf.reads = [| key |]; writes = [| (key, i) |] }));
  S.crash_replica sys 2;
  let completed = ref None in
  S.trigger_epoch_change sys ~recovering:[ 2 ] ~on_complete:(fun ~success ->
      completed := Some success);
  Engine.run ~until:5_000_000.0 ~max_events:20_000_000 engine;
  Alcotest.(check (option bool)) "completed despite drops" (Some true) !completed;
  Alcotest.(check (option int)) "replica 2 recovered" (Some 1)
    (S.read_committed sys ~replica:2 ~key:1)

(* --- n = 5 (f = 2): supermajority 4, majority 3. --- *)

let cfg5 = { base_cfg with n_replicas = 5; n_clients = 8 }

let test_n5_fast_path () =
  let engine, sys = make ~cfg:cfg5 () in
  let outcomes =
    run_txns engine sys ~clients:4 ~per_client:10 ~request:(fun c i ->
        let key = (c * 10) + i in
        { Intf.reads = [| key |]; writes = [| (key, i) |] })
  in
  Alcotest.(check int) "all decided" 40 (List.length outcomes);
  List.iter (fun (_, _, ok) -> Alcotest.(check bool) "committed" true ok) outcomes;
  (* With 5 healthy replicas and no conflicts everything goes fast. *)
  Alcotest.(check int) "all fast" 40 (S.counters sys).Intf.fast_path;
  for r = 0 to 4 do
    Alcotest.(check (option int))
      (Printf.sprintf "replica %d applied" r)
      (Some 1)
      (S.read_committed sys ~replica:r ~key:1)
  done

let test_n5_survives_two_crashes () =
  let engine, sys = make ~cfg:cfg5 () in
  S.crash_replica sys 3;
  S.crash_replica sys 4;
  let outcomes =
    run_txns engine sys ~clients:4 ~per_client:5 ~request:(fun c i ->
        let key = (c * 5) + i in
        { Intf.reads = [| key |]; writes = [| (key, i) |] })
  in
  Alcotest.(check int) "all decided with majority 3/5" 20 (List.length outcomes);
  List.iter (fun (_, _, ok) -> Alcotest.(check bool) "committed" true ok) outcomes;
  Alcotest.(check bool) "slow path used" true ((S.counters sys).Intf.slow_path >= 20)

let test_n5_one_crash_keeps_fast_path () =
  (* n=5 tolerates one crash *without* losing the fast path: the
     supermajority is 4 of 5 — this is exactly the paper's remark that
     failures only force the slow path when availability drops below
     f+ceil(f/2)+1. *)
  let engine, sys = make ~cfg:cfg5 () in
  S.crash_replica sys 4;
  let outcomes =
    run_txns engine sys ~clients:4 ~per_client:5 ~request:(fun c i ->
        let key = 100 + (c * 5) + i in
        { Intf.reads = [| key |]; writes = [| (key, i) |] })
  in
  Alcotest.(check int) "all decided" 20 (List.length outcomes);
  Alcotest.(check int) "still fast path" 20 (S.counters sys).Intf.fast_path

let test_n5_epoch_change () =
  let engine, sys = make ~cfg:cfg5 () in
  ignore
    (run_txns engine sys ~clients:4 ~per_client:10 ~request:(fun c i ->
         let key = (c * 10) + i in
         { Intf.reads = [| key |]; writes = [| (key, i) |] }));
  S.crash_replica sys 1;
  S.crash_replica sys 2;
  Alcotest.(check bool) "epoch change with 3/5" true
    (S.run_epoch_change sys ~recovering:[ 1; 2 ]);
  for r = 1 to 2 do
    Alcotest.(check (option int))
      (Printf.sprintf "replica %d recovered" r)
      (Some 3)
      (S.read_committed sys ~replica:r ~key:3)
  done

(* --- the reusable emission batch and its pool (DESIGN.md §14) --- *)

let test_batch_emit_iter_clear () =
  let b = Batch.create ~capacity:2 () in
  Alcotest.(check bool) "fresh batch empty" true (Batch.is_empty b);
  for i = 1 to 5 do
    Batch.emit b i
  done;
  Alcotest.(check int) "length tracks emissions" 5 (Batch.length b);
  Alcotest.(check (list int)) "order preserved across growth"
    [ 1; 2; 3; 4; 5 ] (Batch.to_list b);
  Alcotest.(check int) "indexed access" 3 (Batch.get b 2);
  (* A follow-up emitted mid-iteration (a driver folding its own steps
     into the batch it is draining) must be seen by the same pass. *)
  let seen = ref [] in
  Batch.iter
    (fun x ->
      seen := x :: !seen;
      if x = 5 then Batch.emit b 6)
    b;
  Alcotest.(check (list int)) "mid-iteration emission seen"
    [ 1; 2; 3; 4; 5; 6 ] (List.rev !seen);
  Batch.clear b;
  Alcotest.(check bool) "clear empties" true (Batch.is_empty b);
  Batch.emit b 9;
  Alcotest.(check (list int)) "reusable after clear" [ 9 ] (Batch.to_list b)

let test_pool_never_aliases () =
  let p = Batch.Pool.create () in
  let a = Batch.Pool.rent p in
  let b = Batch.Pool.rent p in
  Alcotest.(check bool) "concurrent rentals are distinct batches" false
    (a == b);
  Batch.emit a 1;
  Batch.emit b 2;
  Alcotest.(check (list int)) "no cross-talk into a" [ 1 ] (Batch.to_list a);
  Alcotest.(check (list int)) "no cross-talk into b" [ 2 ] (Batch.to_list b);
  Batch.Pool.return p a;
  Batch.Pool.return p b;
  let c = Batch.Pool.rent p in
  let d = Batch.Pool.rent p in
  Alcotest.(check bool) "rentals recycle returned batches" true
    ((c == a || c == b) && (d == a || d == b));
  Alcotest.(check bool) "but never the same one twice" false (c == d);
  Alcotest.(check bool) "recycled batches come back clear" true
    (Batch.is_empty c && Batch.is_empty d)

let test_pool_with_batch_reentrant () =
  let p = Batch.Pool.create () in
  Batch.Pool.with_batch p (fun outer ->
      Batch.emit outer 10;
      Batch.Pool.with_batch p (fun inner ->
          Alcotest.(check bool) "nested rental is a distinct batch" false
            (inner == outer);
          Batch.emit inner 99;
          Alcotest.(check (list int)) "inner sees only its own" [ 99 ]
            (Batch.to_list inner));
      Batch.emit outer 20;
      Alcotest.(check (list int)) "outer intact across nesting" [ 10; 20 ]
        (Batch.to_list outer));
  (* The exception path still returns the batch — and returns it
     cleared, so the next renter never sees stale actions. *)
  (match Batch.Pool.with_batch p (fun b ->
       Batch.emit b 1;
       failwith "boom")
   with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  let r = Batch.Pool.rent p in
  Alcotest.(check bool) "batch recovered clean after the exception" true
    (Batch.is_empty r)

let () =
  Alcotest.run "protocol"
    [
      ( "normal-case",
        [
          Alcotest.test_case "single txn commits everywhere" `Quick
            test_single_txn_commits;
          Alcotest.test_case "read-only txn" `Quick test_read_only_txn;
          Alcotest.test_case "blind write" `Quick test_blind_write_txn;
          Alcotest.test_case "disjoint txns all commit" `Quick
            test_non_conflicting_txns_all_commit;
          Alcotest.test_case "replicas converge" `Quick test_replicas_converge;
          Alcotest.test_case "interactive txns conserve" `Quick
            test_interactive_conservation;
          Alcotest.test_case "deterministic runs" `Quick test_deterministic_runs;
        ] );
      ( "serializability",
        [
          Alcotest.test_case "low contention" `Quick test_serializable_low_contention;
          Alcotest.test_case "high contention" `Quick test_serializable_high_contention;
          Alcotest.test_case "huge clock skew" `Quick test_serializable_with_clock_skew;
        ] );
      ( "faults",
        [
          Alcotest.test_case "progress under 20% loss" `Quick
            test_progress_under_message_loss;
          Alcotest.test_case "slow path under drops" `Quick test_slow_path_under_drops;
          Alcotest.test_case "survives one crash" `Quick test_survives_one_replica_crash;
          Alcotest.test_case "no majority, no progress" `Quick
            test_no_progress_without_majority;
          Alcotest.test_case "epoch change recovers replica" `Quick
            test_epoch_change_recovers_replica;
          Alcotest.test_case "epoch change needs majority" `Quick
            test_epoch_change_requires_majority;
          Alcotest.test_case "epoch change decides in-flight txns" `Quick
            test_epoch_change_decides_inflight;
          Alcotest.test_case "async epoch change" `Quick test_async_epoch_change;
          Alcotest.test_case "async epoch change needs majority" `Quick
            test_async_epoch_change_no_majority;
          Alcotest.test_case "async epoch change under drops" `Quick
            test_async_epoch_change_under_drops;
        ] );
      ( "batch-pool",
        [
          Alcotest.test_case "emit, iterate, clear" `Quick
            test_batch_emit_iter_clear;
          Alcotest.test_case "rentals never aliased" `Quick
            test_pool_never_aliases;
          Alcotest.test_case "with_batch reentrant" `Quick
            test_pool_with_batch_reentrant;
        ] );
      ( "five-replicas",
        [
          Alcotest.test_case "fast path with 5 replicas" `Quick test_n5_fast_path;
          Alcotest.test_case "survives two crashes" `Quick test_n5_survives_two_crashes;
          Alcotest.test_case "one crash keeps fast path" `Quick
            test_n5_one_crash_keeps_fast_path;
          Alcotest.test_case "epoch change at 3/5" `Quick test_n5_epoch_change;
        ] );
    ]
