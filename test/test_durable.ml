(* The durability layer, tested from the bytes up: the CRC check
   value, codec roundtrips, exhaustive torn-tail / bit-flip fuzzing
   of the replay readers (they must never raise — rule Z7), the
   snapshot/log interplay cases of crash-reboot recovery, and the
   real-file WAL against a scratch directory. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Quorum = Mk_meerkat.Quorum
module Replica = Mk_meerkat.Replica
module Crc32 = Mk_durable.Crc32
module Walcodec = Mk_durable.Walcodec
module Wal = Mk_durable.Wal
module Snapshot = Mk_durable.Snapshot
module Recover = Mk_durable.Recover
module Memlog = Mk_durable.Memlog
module Runtime = Mk_live.Runtime

let ts time = Timestamp.make ~time ~client_id:1

let txn ~seq ~key ~value =
  Txn.make
    ~tid:(Tid.make ~seq ~client_id:1)
    ~read_set:[]
    ~write_set:[ ({ key; value } : Txn.write_entry) ]

let view ~seq ~key ~value ~time status =
  { Replica.txn = txn ~seq ~key ~value; ts = ts time; status; view = 0;
    accept_view = None }

(* A deterministic position generator (no Random: byte-for-byte
   reproducible across runs and OCaml versions). *)
let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

(* --- CRC32 --- *)

let test_crc_check_value () =
  Alcotest.(check int)
    "IEEE 802.3 check value" 0xCBF43926
    (Crc32.digest "123456789");
  Alcotest.(check int) "empty string" 0 (Crc32.digest "")

let test_crc_detects_flips () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let d = Crc32.digest s in
  for i = 0 to String.length s - 1 do
    if Crc32.digest (flip_byte s i) = d then
      Alcotest.failf "byte flip at %d not detected" i
  done

(* --- codec roundtrips --- *)

let sample_records =
  List.init 8 (fun i ->
      {
        Walcodec.core = i mod 2;
        view =
          view ~seq:(i + 1) ~key:i ~value:(i * 10) ~time:(float_of_int (i + 1))
            (if i mod 3 = 2 then Txn.Aborted else Txn.Committed);
      })

let log_image records =
  String.concat "" (List.map Walcodec.encode_record records)

(* Byte offsets of the frame boundaries: b.(i) is where frame i
   starts; the final element is the image length. *)
let boundaries records =
  let sizes = List.map (fun r -> String.length (Walcodec.encode_record r)) records in
  Array.of_list (List.fold_left (fun acc s -> (List.hd acc + s) :: acc) [ 0 ] sizes |> List.rev)

let record_equal (a : Walcodec.record) (b : Walcodec.record) =
  a.core = b.core
  && Tid.equal a.view.txn.tid b.view.txn.tid
  && Timestamp.compare a.view.ts b.view.ts = 0
  && a.view.status = b.view.status
  && a.view.view = b.view.view
  && a.view.accept_view = b.view.accept_view

let test_record_roundtrip () =
  let r = Walcodec.read_records (log_image sample_records) in
  Alcotest.(check int) "no decode errors" 0 r.decode_errors;
  Alcotest.(check int) "all frames" (List.length sample_records)
    (List.length r.records);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "record roundtrips" true (record_equal a b))
    sample_records r.records

let sample_snapshot =
  {
    Walcodec.core = 1;
    epoch = 3;
    wal_cut = 420;
    views = List.map (fun r -> r.Walcodec.view) sample_records;
    rows = [ (1, 10, ts 1.0, ts 2.0); (3, 30, ts 3.0, ts 3.0) ];
  }

let test_snapshot_roundtrip () =
  match Walcodec.read_snapshot (Walcodec.encode_snapshot sample_snapshot) with
  | None -> Alcotest.fail "snapshot did not roundtrip"
  | Some s ->
      Alcotest.(check int) "core" 1 s.core;
      Alcotest.(check int) "epoch" 3 s.epoch;
      Alcotest.(check int) "wal_cut" 420 s.wal_cut;
      Alcotest.(check int) "views" (List.length sample_snapshot.views)
        (List.length s.views);
      Alcotest.(check int) "rows" 2 (List.length s.rows)

(* --- torn-tail / bit-flip fuzzing (never raises, longest valid
   prefix, decode_errors counted) --- *)

let test_log_truncated_at_every_offset () =
  let image = log_image sample_records in
  let b = boundaries sample_records in
  let frames_before k =
    (* the number of whole frames contained in the first [k] bytes *)
    let j = ref 0 in
    while !j + 1 < Array.length b && b.(!j + 1) <= k do incr j done;
    !j
  in
  for k = 0 to String.length image do
    let r = Walcodec.read_records (String.sub image 0 k) in
    let j = frames_before k in
    Alcotest.(check int) (Printf.sprintf "prefix at cut %d" k) j
      (List.length r.records);
    Alcotest.(check int) (Printf.sprintf "valid_bytes at cut %d" k) b.(j)
      r.valid_bytes;
    Alcotest.(check int)
      (Printf.sprintf "decode_errors at cut %d" k)
      (if k = b.(j) then 0 else 1)
      r.decode_errors
  done

let test_log_seeded_byte_flips () =
  let image = log_image sample_records in
  let b = boundaries sample_records in
  let n = String.length image in
  let frame_of p =
    let j = ref 0 in
    while b.(!j + 1) <= p do incr j done;
    !j
  in
  let seed = ref 0x5EED in
  for _ = 1 to 128 do
    seed := lcg !seed;
    let p = !seed mod n in
    let r = Walcodec.read_records (flip_byte image p) in
    let j = frame_of p in
    Alcotest.(check int)
      (Printf.sprintf "flip at %d stops at its frame" p)
      j (List.length r.records);
    Alcotest.(check int) (Printf.sprintf "flip at %d counted" p) 1 r.decode_errors
  done

let test_log_from_out_of_bounds () =
  let image = log_image sample_records in
  List.iter
    (fun from ->
      let r = Walcodec.read_records ~from image in
      Alcotest.(check int)
        (Printf.sprintf "from=%d is a counted error" from)
        1 r.decode_errors;
      Alcotest.(check (list reject)) "and yields no records" [] r.records)
    [ -1; String.length image + 1; max_int ]

let test_log_from_mid_frame () =
  (* A cut token landing mid-frame (e.g. the log shrank after the
     snapshot was written): the torn suffix is dropped, not raised. *)
  let image = log_image sample_records in
  let r = Walcodec.read_records ~from:3 image in
  Alcotest.(check int) "mid-frame cut counted" 1 r.decode_errors;
  Alcotest.(check (list reject)) "no phantom records" [] r.records

let test_snapshot_corruption () =
  let image = Walcodec.encode_snapshot sample_snapshot in
  let n = String.length image in
  (* every truncation: a snapshot is one frame, so any cut kills it *)
  for k = 0 to n - 1 do
    match Walcodec.read_snapshot (String.sub image 0 k) with
    | None -> ()
    | Some _ -> Alcotest.failf "truncation at %d accepted" k
  done;
  (* seeded flips *)
  let seed = ref 0xF00D in
  for _ = 1 to 64 do
    seed := lcg !seed;
    let p = !seed mod n in
    match Walcodec.read_snapshot (flip_byte image p) with
    | None -> ()
    | Some _ -> Alcotest.failf "byte flip at %d accepted" p
  done

let test_recover_parse_garbage () =
  (* Recover.parse over hostile images: misfiled cores, garbage logs,
     corrupt snapshots — counted, never raised. *)
  let garbage = String.init 64 (fun i -> Char.chr (i * 7 land 0xff)) in
  let p =
    Recover.parse ~cores:2
      [
        { Recover.snap = Some garbage; log = garbage };
        { snap = None; log = "" };
        (* a third source for a 2-core replica cannot map to a
           partition: counted and skipped *)
        { snap = None; log = log_image sample_records };
      ]
  in
  Alcotest.(check bool) "errors counted" true (p.decode_errors >= 2);
  Alcotest.(check int) "nothing misfiled replays" 0 p.replayed

(* --- snapshot/log interplay (the crash-reboot recovery cases) --- *)

let cores = 2

let mk_replica () =
  let r = Replica.create ~id:0 ~quorum:(Quorum.create ~n:3) ~cores in
  for key = 0 to 7 do
    Replica.load r ~key ~value:0
  done;
  r

(* A replica wired to per-core memlogs exactly as the chaos harness
   wires it: Finalized appends to the owning core's log, Installed
   snapshots every core. *)
let with_memlogs r =
  let logs = Array.init cores (fun _ -> Memlog.create ()) in
  Replica.set_durable_hook r (function
    | Replica.Finalized { core; view } ->
        Memlog.append logs.(core) (Walcodec.encode_record { core; view })
    | Replica.Installed { epoch } ->
        Array.iteri
          (fun k log ->
            let views =
              Replica.record_views r
              |> List.filter_map (fun (c, v) -> if c = k then Some v else None)
            in
            let rows =
              Replica.store_snapshot r
              |> List.filter (fun (key, _, _, _) -> key mod cores = k)
            in
            Memlog.set_snapshot log
              (Walcodec.encode_snapshot
                 { core = k; epoch; wal_cut = Memlog.log_length log; views; rows }))
          logs);
  logs

(* Snapshot now, as the epoch driver would at install time. *)
let snapshot_now r logs =
  Array.iteri
    (fun k log ->
      let views =
        Replica.record_views r
        |> List.filter_map (fun (c, v) -> if c = k then Some v else None)
      in
      let rows =
        Replica.store_snapshot r
        |> List.filter (fun (key, _, _, _) -> key mod cores = k)
      in
      Memlog.set_snapshot log
        (Walcodec.encode_snapshot
           {
             core = k;
             epoch = Replica.epoch r;
             wal_cut = Memlog.log_length log;
             views;
             rows;
           }))
    logs

let commit r ~seq =
  let key = seq mod 8 in
  let t = txn ~seq ~key ~value:(seq * 10) in
  let core = seq mod cores in
  (match Replica.handle_validate r ~core ~txn:t ~ts:(ts (float_of_int seq)) with
  | Some Txn.Validated_ok -> ()
  | _ -> Alcotest.failf "txn %d did not validate" seq);
  match
    Replica.handle_commit r ~core ~txn:t ~ts:(ts (float_of_int seq)) ~commit:true
  with
  | Some () -> ()
  | None -> Alcotest.failf "txn %d did not commit" seq

let sources logs =
  Array.to_list logs
  |> List.map (fun log ->
         { Recover.snap = Memlog.snapshot log; log = Memlog.log_contents log })

let committed_seqs (p : Recover.parsed) =
  p.records
  |> List.filter_map (fun ((_, v) : int * Replica.record_view) ->
         if v.status = Txn.Committed then Some v.txn.tid.seq else None)
  |> List.sort_uniq compare

let row_equal (k1, v1, w1, r1) (k2, v2, w2, r2) =
  k1 = k2 && v1 = v2 && Timestamp.compare w1 w2 = 0 && Timestamp.compare r1 r2 = 0

let rows_equal a b =
  let sort = List.sort (fun (k1, _, _, _) (k2, _, _, _) -> compare k1 k2) in
  List.length a = List.length b && List.for_all2 row_equal (sort a) (sort b)

let test_snapshot_plus_suffix () =
  (* Snapshot mid-traffic, more commits, crash: recovery uses the
     snapshot and replays only the post-cut suffix — yet sees every
     commit. *)
  let r = mk_replica () in
  let logs = with_memlogs r in
  for seq = 1 to 6 do commit r ~seq done;
  snapshot_now r logs;
  for seq = 7 to 12 do commit r ~seq done;
  let p = Recover.parse ~cores (sources logs) in
  Alcotest.(check int) "both snapshots used" cores p.snapshots_used;
  Alcotest.(check int) "suffix only" 6 p.replayed;
  Alcotest.(check int) "clean images" 0 p.decode_errors;
  Alcotest.(check (list int)) "every commit recovered"
    (List.init 12 (fun i -> i + 1))
    (committed_seqs p);
  (* the rebuilt store matches the pre-crash one *)
  let pre = Replica.store_snapshot r in
  let fresh = mk_replica () in
  Recover.apply fresh p;
  Alcotest.(check bool) "stores match" true
    (rows_equal pre (Replica.store_snapshot fresh))

let test_stale_snapshot_full_log () =
  (* A snapshot whose cut token says 0 (stale: taken before anything
     it covers was logged) forces a full-log replay over the snapshot
     state; the overlap must be idempotent, not doubled. *)
  let r = mk_replica () in
  let logs = with_memlogs r in
  for seq = 1 to 6 do commit r ~seq done;
  snapshot_now r logs;
  for seq = 7 to 12 do commit r ~seq done;
  Array.iter
    (fun log ->
      match Memlog.snapshot log with
      | None -> Alcotest.fail "snapshot missing"
      | Some img -> (
          match Walcodec.read_snapshot img with
          | None -> Alcotest.fail "snapshot unreadable"
          | Some s ->
              Memlog.set_snapshot log
                (Walcodec.encode_snapshot { s with wal_cut = 0 })))
    logs;
  let p = Recover.parse ~cores (sources logs) in
  Alcotest.(check int) "full log replayed" 12 p.replayed;
  Alcotest.(check (list int)) "overlap idempotent"
    (List.init 12 (fun i -> i + 1))
    (committed_seqs p);
  let fresh = mk_replica () in
  Recover.apply fresh p;
  Alcotest.(check bool) "stores match" true
    (rows_equal (Replica.store_snapshot r) (Replica.store_snapshot fresh))

let test_snapshot_zero_tail () =
  (* Snapshot at the very end: recovery is snapshot-only. *)
  let r = mk_replica () in
  let logs = with_memlogs r in
  for seq = 1 to 12 do commit r ~seq done;
  snapshot_now r logs;
  let p = Recover.parse ~cores (sources logs) in
  Alcotest.(check int) "nothing to replay" 0 p.replayed;
  Alcotest.(check (list int)) "state fully from snapshots"
    (List.init 12 (fun i -> i + 1))
    (committed_seqs p)

let test_recovery_idempotent () =
  let r = mk_replica () in
  let logs = with_memlogs r in
  for seq = 1 to 6 do commit r ~seq done;
  snapshot_now r logs;
  for seq = 7 to 12 do commit r ~seq done;
  let p1 = Recover.parse ~cores (sources logs) in
  let p2 = Recover.parse ~cores (sources logs) in
  Alcotest.(check (list int)) "same parse twice" (committed_seqs p1)
    (committed_seqs p2);
  Alcotest.(check int) "same replay count" p1.replayed p2.replayed;
  let fresh = mk_replica () in
  Recover.apply fresh p1;
  let once = Replica.store_snapshot fresh in
  (* applying again is a no-op (Thomas write rule) *)
  Recover.apply fresh p2;
  Alcotest.(check bool) "double apply is a no-op" true
    (rows_equal once (Replica.store_snapshot fresh))

let test_crash_then_replay_into_epoch () =
  (* The reboot path end to end: crash wipes the stores, recovery
     replays the images, and the replica serves reads again. *)
  let r = mk_replica () in
  let logs = with_memlogs r in
  for seq = 1 to 12 do commit r ~seq done;
  let pre = Replica.store_snapshot r in
  Replica.crash r;
  Alcotest.(check bool) "crashed" true (Replica.is_crashed r);
  Replica.begin_recovery r;
  let p = Recover.parse ~cores (sources logs) in
  Recover.apply r p;
  Replica.handle_epoch_complete r ~epoch:(p.epoch + 1) ~records:p.records
    ~store:None
  |> ignore;
  Alcotest.(check bool) "available again" true (Replica.is_available r);
  Alcotest.(check bool) "store survived the crash" true
    (rows_equal pre (Replica.store_snapshot r))

(* --- the real-file WAL and snapshot I/O --- *)

let test_wal_files () =
  let dir = Runtime.fresh_data_dir ~tag:"test-durable" in
  Fun.protect
    ~finally:(fun () -> Runtime.remove_data_dir ~dir ~n_replicas:1 ~cores:1)
  @@ fun () ->
  let path = Runtime.durable_wal_path ~dir ~replica:0 ~core:0 in
  let frames = List.map Walcodec.encode_record sample_records in
  let wal = Wal.open_log ~path ~policy:Wal.Always in
  List.iter
    (fun f ->
      match Wal.append wal f with
      | `Synced -> ()
      | `Buffered -> Alcotest.fail "Always policy must sync every append")
    frames;
  let full = List.fold_left (fun n f -> n + String.length f) 0 frames in
  Alcotest.(check int) "length counts bytes" full (Wal.length wal);
  Wal.close wal;
  let r = Walcodec.read_records (Wal.read_file path) in
  Alcotest.(check int) "replay off disk" (List.length sample_records)
    (List.length r.records);
  Alcotest.(check int) "clean" 0 r.decode_errors;
  (* reopen keeps the existing bytes and appends after them *)
  let wal = Wal.open_log ~path ~policy:(Wal.Every 4) in
  Alcotest.(check int) "reopen sees the old bytes" full (Wal.length wal);
  ignore (Wal.append wal (List.hd frames));
  Wal.close wal;
  let r = Walcodec.read_records (Wal.read_file path) in
  Alcotest.(check int) "appended past them" (List.length sample_records + 1)
    (List.length r.records);
  (* reboot-time compaction *)
  let wal = Wal.open_log ~path ~policy:Wal.Never in
  Wal.truncate wal ~len:(String.length (List.hd frames));
  Wal.close wal;
  let r = Walcodec.read_records (Wal.read_file path) in
  Alcotest.(check int) "truncated to one frame" 1 (List.length r.records);
  Alcotest.(check int) "missing file reads empty" 0
    (String.length (Wal.read_file (Filename.concat dir "nope.wal")))

let test_snapshot_files () =
  let dir = Runtime.fresh_data_dir ~tag:"test-durable" in
  Fun.protect
    ~finally:(fun () -> Runtime.remove_data_dir ~dir ~n_replicas:1 ~cores:1)
  @@ fun () ->
  let path = Runtime.durable_snap_path ~dir ~replica:0 ~core:0 in
  Alcotest.(check bool) "missing is None" true (Snapshot.read ~path = None);
  let img = Walcodec.encode_snapshot sample_snapshot in
  Snapshot.write ~path img;
  (match Snapshot.read ~path with
  | Some got -> Alcotest.(check string) "roundtrip" img got
  | None -> Alcotest.fail "snapshot unreadable");
  (* overwrite is atomic: the new image fully replaces the old *)
  let img2 =
    Walcodec.encode_snapshot { sample_snapshot with epoch = 9; wal_cut = 7 }
  in
  Snapshot.write ~path img2;
  match Snapshot.read ~path with
  | Some got -> Alcotest.(check string) "replaced" img2 got
  | None -> Alcotest.fail "snapshot unreadable after overwrite"

let test_fsync_policy_parse () =
  let cases =
    [ ("always", Some Wal.Always); ("never", Some Wal.Never);
      ("every=8", Some (Wal.Every 8)); ("every=0", None); ("every=x", None);
      ("bogus", None) ]
  in
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool) s true (Wal.policy_of_string s = expect))
    cases;
  List.iter
    (fun p ->
      Alcotest.(check bool) "to_string roundtrips" true
        (Wal.policy_of_string (Wal.policy_to_string p) = Some p))
    [ Wal.Always; Wal.Never; Wal.Every 8 ]

let () =
  Alcotest.run "durable"
    [
      ( "codec",
        [
          Alcotest.test_case "crc check value" `Quick test_crc_check_value;
          Alcotest.test_case "crc detects flips" `Quick test_crc_detects_flips;
          Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "log truncated at every offset" `Quick
            test_log_truncated_at_every_offset;
          Alcotest.test_case "log seeded byte flips" `Quick
            test_log_seeded_byte_flips;
          Alcotest.test_case "replay from out of bounds" `Quick
            test_log_from_out_of_bounds;
          Alcotest.test_case "replay from mid-frame" `Quick test_log_from_mid_frame;
          Alcotest.test_case "snapshot corruption" `Quick test_snapshot_corruption;
          Alcotest.test_case "recover parses garbage" `Quick
            test_recover_parse_garbage;
        ] );
      ( "interplay",
        [
          Alcotest.test_case "snapshot + suffix only" `Quick
            test_snapshot_plus_suffix;
          Alcotest.test_case "stale snapshot + full log" `Quick
            test_stale_snapshot_full_log;
          Alcotest.test_case "snapshot with zero tail" `Quick
            test_snapshot_zero_tail;
          Alcotest.test_case "recovery idempotent" `Quick test_recovery_idempotent;
          Alcotest.test_case "crash then replay into epoch" `Quick
            test_crash_then_replay_into_epoch;
        ] );
      ( "files",
        [
          Alcotest.test_case "wal files" `Quick test_wal_files;
          Alcotest.test_case "snapshot files" `Quick test_snapshot_files;
          Alcotest.test_case "fsync policy parse" `Quick test_fsync_policy_parse;
        ] );
    ]
