(* Real-parallelism tests: the same vstore/Alg. 1 code raced by actual
   OCaml domains. The container may have few cores; preemption still
   interleaves domains, and the properties are scheduling-independent. *)

module Par_occ = Mk_multicore.Par_occ
module Counter_bench = Mk_multicore.Counter_bench
module Checker = Mk_harness.Checker
module Vstore = Mk_storage.Vstore

let test_uncontended_all_commit () =
  (* Huge keyspace, tiny load: conflicts are overwhelmingly unlikely,
     and every transaction should commit. *)
  let report =
    Par_occ.run ~domains:2 ~txns_per_domain:500 ~keys:100_000 ~theta:0.0 ~seed:1 ()
  in
  Alcotest.(check bool) "almost no aborts" true (report.Par_occ.aborted < 5);
  Alcotest.(check int) "commits + aborts = total" 1000
    (List.length report.Par_occ.committed + report.Par_occ.aborted)

let test_contended_serializable () =
  (* Four domains hammering 16 keys: plenty of real races; the
     committed history must be serializable in timestamp order. *)
  let report =
    Par_occ.run ~domains:4 ~txns_per_domain:2000 ~keys:16 ~theta:0.0 ~seed:2 ()
  in
  Alcotest.(check bool) "some commits" true (List.length report.Par_occ.committed > 100);
  Alcotest.(check bool) "some aborts" true (report.Par_occ.aborted > 0);
  match Checker.check report.Par_occ.committed with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "serializability violated: %s"
        (Format.asprintf "%a" Checker.pp_violation v)

let test_skewed_serializable () =
  let report =
    Par_occ.run ~domains:4 ~txns_per_domain:1500 ~keys:1024 ~theta:0.9
      ~reads_per_txn:2 ~seed:3 ()
  in
  match Checker.check report.Par_occ.committed with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "serializability violated: %s"
        (Format.asprintf "%a" Checker.pp_violation v)

let test_store_matches_replay () =
  (* The final store state must equal a timestamp-order replay of the
     committed set — the multicore analogue of replica convergence. *)
  let store = Vstore.create () in
  let report =
    Par_occ.run_with_store ~store ~domains:4 ~txns_per_domain:1000 ~keys:64
      ~theta:0.5 ~seed:4 ()
  in
  match Par_occ.final_store_matches report store with
  | None -> ()
  | Some (key, expected, got) ->
      Alcotest.failf "key %d: store has %d, replay says %d" key got expected

let test_no_pending_residue () =
  let store = Vstore.create () in
  ignore
    (Par_occ.run_with_store ~store ~domains:3 ~txns_per_domain:800 ~keys:32 ~theta:0.6
       ~seed:5 ());
  Alcotest.(check (pair int int)) "pending sets empty after quiescence" (0, 0)
    (Vstore.pending_counts store)

let test_single_domain_degenerate () =
  let report =
    Par_occ.run ~domains:1 ~txns_per_domain:300 ~keys:8 ~theta:0.0 ~seed:6 ()
  in
  (* One domain, sequential: RMWs never conflict with themselves. *)
  Alcotest.(check int) "no aborts" 0 report.Par_occ.aborted;
  Alcotest.(check int) "all commit" 300 (List.length report.Par_occ.committed)

let test_counter_benches_count () =
  let shared = Counter_bench.shared_atomic ~domains:2 ~increments_per_domain:50_000 in
  Alcotest.(check int) "shared total" 100_000 shared.Counter_bench.increments;
  Alcotest.(check bool) "ops/s positive" true (shared.Counter_bench.ops_per_second > 0.0);
  let sharded = Counter_bench.sharded ~domains:2 ~increments_per_domain:50_000 in
  Alcotest.(check int) "sharded total" 100_000 sharded.Counter_bench.increments

let () =
  (* Arm the lock-discipline checker before any domain spawns; the
     par-occ matrix is exactly the workload it polices. *)
  Mk_check.Owner.enable ();
  Alcotest.run "multicore"
    [
      ( "par-occ",
        [
          Alcotest.test_case "uncontended commits" `Quick test_uncontended_all_commit;
          Alcotest.test_case "contended is serializable" `Quick
            test_contended_serializable;
          Alcotest.test_case "skewed is serializable" `Quick test_skewed_serializable;
          Alcotest.test_case "store equals replay" `Quick test_store_matches_replay;
          Alcotest.test_case "no pending residue" `Quick test_no_pending_residue;
          Alcotest.test_case "single-domain degenerate" `Quick
            test_single_domain_degenerate;
        ] );
      ( "counters",
        [ Alcotest.test_case "both variants count correctly" `Quick test_counter_benches_count ]
      );
    ]
