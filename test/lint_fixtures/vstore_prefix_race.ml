(* The pre-fix shape of Vstore.find (lib/storage/vstore.ml as of the
   seed): a Hashtbl read of a domain-shared shard table with no
   shard_lock, racing with table resizes in load/find_or_create under
   real domains. Kept as a lint fixture — never compiled — so
   test_lint pins that rule Z3 catches the original bug; the dynamic
   twin is Vstore.For_testing.unguarded_find. *)
type shard = { table : (int, int) Hashtbl.t; shard_lock : Mutex.t }

let shard_of t key = t.shards.(key land t.mask)

let find t key =
  let s = shard_of t key in
  Hashtbl.find_opt s.table key
