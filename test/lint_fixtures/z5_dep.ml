(* Z5 fixture: the transport-touching sibling that [z5_bad.ml] leans
   on — it reaches Unix directly. *)
let now () = Unix.gettimeofday ()
