(* Z4 passing fixture: ships the .mli next door. *)
let answer = 42
