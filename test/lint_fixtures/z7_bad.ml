(* Z7 fixture: a decode entry that can raise three ways — through a
   helper, through a bare string index, and through a parse. *)
let need buf n = if String.length buf < n then failwith "short frame"

let decode buf =
  need buf 4;
  let tag = Char.code buf.[0] in
  (tag, int_of_string (String.sub buf 1 3))
