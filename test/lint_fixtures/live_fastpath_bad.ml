(* A live-runtime coordinator fast path that cheats: decision state in
   an atomic and a lock around the reply count. Z1 must flag it even
   though the mailbox internals next door are allowlisted. *)
let decided = Atomic.make false

let on_reply lock replies =
  Mutex.lock lock;
  incr replies;
  Mutex.unlock lock;
  if !replies >= 2 then Atomic.set decided true
