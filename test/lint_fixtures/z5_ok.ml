(* Z5 fixture: no transport dependency anywhere in its closure — the
   clock value is injected by the caller. *)
let stamp ~now = now +. 1.0
