(* Shard-layer fixture: a router that stamps with the wall clock —
   forbidden on both axes (Z5 layering: Unix is a transport-layer
   module; Z6 purity: time must arrive as ~now from the driver). *)
let stamp () = Unix.gettimeofday ()
let shard_of_key ~shards key = (key + int_of_float (stamp ())) mod shards
