(* Z7 fixture: the total replay shape the durable layer ships — a
   bounds check guards every slice, and garbage yields the longest
   valid prefix instead of an exception. The one raw [String.sub]
   sits behind the check and carries a per-site allow, exactly like
   the wire cursor primitives. *)
let[@mk_lint.allow "Z7"] slice log pos len =
  (* Safe: both bounds checked against the log length just above. *)
  if pos >= 0 && len >= 0 && pos + len <= String.length log then
    Some (String.sub log pos len)
  else None

let read_records log =
  let rec go acc pos =
    match slice log pos 8 with
    | None -> List.rev acc (* torn tail: keep the valid prefix *)
    | Some header -> (
        match int_of_string_opt header with
        | None -> List.rev acc
        | Some len -> (
            match slice log (pos + 8) len with
            | None -> List.rev acc
            | Some payload -> go (payload :: acc) (pos + 8 + len)))
  in
  go [] 0
