(* Z5 fixture: reaches Unix only transitively, through the sibling
   module [Z5_dep] — the layering walk must follow the file edge. *)
let stamp () = Z5_dep.now ()
