(* Z7 fixture: [boom] raises but is not reachable from [decode] — the
   analysis must scope to the entry's closure, not the whole file. *)
let boom () = failwith "not reachable from decode"

let decode buf = if buf = "" then None else Some (String.length buf)
