(* Z6 fixture: opening a local alias — the durable codec's
   [module Wire = Mk_wire.Wire] + [open Wire] shape. The walk must
   expand the alias (transitively: [DD] -> [D] -> the sibling file)
   before treating the open as an unknown, hence impure, module. *)
module D = Z6_alias_dep
module DD = D
open DD

let quadruple x = double (double x)
