(* Pure sibling for the alias fixtures: arithmetic only. *)
let double x = x * 2
