(* Z8 fixture: the same lock taken under an explicit, justified allow —
   the suppression is per-site, not per-file. *)
let m = Mutex.create ()

let deliver _msg =
  (Mutex.lock m [@mk_lint.allow "Z8"]);
  Mutex.unlock m
