(* Z3 passing fixture: every table operation runs inside the guard —
   either as an argument to a call of it, or in its own body. *)
let with_shard s f =
  Mutex.lock s.shard_lock;
  let r = f () in
  Mutex.unlock s.shard_lock;
  r

let find s key = with_shard s (fun () -> Hashtbl.find_opt s.table key)
let add s key v = with_shard s (fun () -> Hashtbl.add s.table key v)
