(* Z8 fixture: the batched-drain shape gone wrong — the per-message
   handler the drain loop applies parks on a mutex, so one slow message
   stalls the whole burst (and the server core behind it). *)
let m = Mutex.create ()

let handle _msg =
  Mutex.lock m;
  Mutex.unlock m

let drain ~max f =
  for i = 1 to max do
    handle (f i)
  done;
  max

let server_loop () = drain ~max:128 (fun i -> i)
