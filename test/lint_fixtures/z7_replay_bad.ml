(* Z7 fixture: a WAL replay reader that trusts its own data
   directory. A torn tail, a flipped length byte, or plain garbage
   makes every line here raise on the reboot path — through the
   framed-length helper and through the bare slices in the loop. *)
let header log pos = int_of_string (String.sub log pos 8)

let read_records log =
  let rec go acc pos =
    if pos >= String.length log then List.rev acc
    else
      let len = header log pos in
      let payload = String.sub log (pos + 8) len in
      go (payload :: acc) (pos + 8 + len)
  in
  go [] 0
