(* Interface for the Z4 passing fixture. *)
val answer : int
