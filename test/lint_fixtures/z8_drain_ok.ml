(* Z8 fixture: the batched-drain shape as shipped — the handler stays
   non-blocking, and the empty-drain fallback to the parking pop is
   taken under an explicit, justified per-site allow (exactly the real
   server loop's [Mailbox.pop] idiom). *)
let m = Mutex.create ()

let pop () =
  Mutex.lock m;
  Mutex.unlock m;
  0

let handle _msg = ()

let drain ~max f =
  for i = 1 to max do
    handle (f i)
  done;
  0

let server_loop () =
  if drain ~max:128 (fun i -> i) = 0 then handle (pop () [@mk_lint.allow "Z8"])
