(* Z4 violation fixture: no .mli sibling. *)
let answer = 42
