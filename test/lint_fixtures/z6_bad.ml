(* Z6 fixture: a protocol-layer file that reads the wall clock through
   a local helper — both the helper and its caller must be flagged,
   the caller with a multi-hop chain through [now_us]. *)
let now_us () = Unix.gettimeofday () *. 1_000_000.

let deadline_passed ~armed = armed && now_us () > 5.0
