(* Shard-layer fixture: pure placement arithmetic and decision logic
   with everything — time included — injected by the caller. The
   shape lib/shard must keep under Z5 (no transport) + Z6 (pure). *)
let shard_of_key ~shards key = key mod shards
let local_key ~shards key = key / shards

let decide ~now votes =
  if List.for_all (fun v -> v) votes then `Commit now else `Abort
