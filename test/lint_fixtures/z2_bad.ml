(* Z2 violation fixture: polymorphic comparison/hash on timestamp- and
   tid-bearing expressions. *)
let stale e r = e.wts = r.wts
let bucket tid n = Hashtbl.hash tid mod n
