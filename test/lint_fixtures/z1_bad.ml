(* Z1 violation fixture: coordination primitives and top-level mutable
   state in a module outside the allowlist. Parsed by test_lint, never
   compiled. *)
let global_lock = Mutex.create ()
let hits = ref 0
let bump counter = Atomic.incr counter
