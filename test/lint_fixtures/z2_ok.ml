(* Z2 passing fixture: dedicated comparators, and the result of a
   dedicated comparator is a plain int — comparing it with 0 is fine. *)
let stale e r = Timestamp.compare e.wts r.wts > 0
let same a b = Timestamp.Tid.equal a b
let is_zero ts = Timestamp.compare ts Timestamp.zero = 0
