(* Mailbox-shaped internals: the same primitives are sanctioned here by
   the file-scoped allowlist entry. *)
type t = { seq : int Atomic.t; lock : Mutex.t; nonempty : Condition.t }

let create () =
  { seq = Atomic.make 0; lock = Mutex.create (); nonempty = Condition.create () }

let publish t =
  Atomic.incr t.seq;
  Mutex.lock t.lock;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock
