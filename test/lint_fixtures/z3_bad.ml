(* Z3 violation fixture: a table operation on a domain-shared module
   outside the lock-guard helper. *)
let find s key = Hashtbl.find_opt s.table key
