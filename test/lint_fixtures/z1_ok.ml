(* Z1 passing fixture: per-call state is fine; only globals and
   coordination primitives are findings. *)
let count xs = List.length xs

let histogram xs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace tbl x ()) xs;
  Hashtbl.length tbl
