(* Z6 fixture: time injected by the caller as ~now — nothing impure in
   reach, so the boundary stays deterministic under the sim. *)
let deadline_passed ~now ~armed = armed && now > 5.0
