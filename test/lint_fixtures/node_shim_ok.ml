(* Socket-shim-shaped internals: a background thread draining an
   outbox — sanctioned here by the file-scoped allowlist entry, as
   lib/node/shim.ml is in the shipped config. *)
type t = { mutable thread : Thread.t option; stop : bool ref }

let start t loop = t.thread <- Some (Thread.create loop ())

let stop t =
  t.stop := true;
  match t.thread with
  | Some th ->
      Thread.join th;
      t.thread <- None
  | None -> ()
