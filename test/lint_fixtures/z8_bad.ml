(* Z8 fixture: the deliver hot path parks on a mutex two calls down. *)
let m = Mutex.create ()

let rendezvous () =
  Mutex.lock m;
  Mutex.unlock m

let deliver _msg = rendezvous ()
