(* Z7 regression pin: the exact pre-fix view-change shape from the
   cluster node — a replica id straight off the wire indexes the
   quorum array with no bounds check (an [Invalid_argument] on the
   shim loop thread). *)
type vc = { mutable vc_accept_from : bool array }

let deliver vc replica =
  if not vc.vc_accept_from.(replica) then vc.vc_accept_from.(replica) <- true
