(* A cluster-node core loop that cheats: validation counts in an
   atomic and a thread spawned outside the shim. Z1 must flag it even
   though the shim internals next door are allowlisted — only the
   socket boundary is sanctioned, never the protocol-driving core. *)
let validated = Atomic.make 0

let core_loop handle =
  ignore (Thread.create handle ());
  Atomic.incr validated
