(* Unit tests for the epoch-change merge rules (§5.3.1). *)

module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Quorum = Mk_meerkat.Quorum
module Replica = Mk_meerkat.Replica
module Epoch = Mk_meerkat.Epoch

let q3 = Quorum.create ~n:3
let q5 = Quorum.create ~n:5
let ts time = Timestamp.make ~time ~client_id:1

let rmw ~seq key =
  Txn.make
    ~tid:(Timestamp.Tid.make ~seq ~client_id:1)
    ~read_set:[ { key; wts = Timestamp.zero } ]
    ~write_set:[ { key; value = seq } ]

let view ?(v = 0) ?accept_view ~status ~ts:t txn : Replica.record_view =
  { txn; ts = t; status; view = v; accept_view }

let report replica records = { Epoch.replica; records }

let merge_status ~quorum reports tid =
  let merged = Epoch.merge ~quorum ~reports in
  match List.find_opt (fun (_, (v : Replica.record_view)) -> Timestamp.Tid.equal v.txn.Txn.tid tid) merged with
  | Some (_, v) -> Some v.Replica.status
  | None -> None

let test_needs_majority () =
  Alcotest.check_raises "one report rejected"
    (Invalid_argument "Epoch.merge: needs reports from a majority of distinct replicas")
    (fun () -> ignore (Epoch.merge ~quorum:q3 ~reports:[ report 0 [] ]))

(* --- Duplicated / reordered reports (at-most-once dedup). --- *)

let test_duplicate_reports_not_double_counted () =
  let t = rmw ~seq:7 0 in
  let ok = view ~status:Txn.Validated_ok ~ts:(ts 1.0) t in
  (* Replica 0's report arrives twice (retransmission); replica 1 has
     no record. One distinct OK is below the ⌈f/2⌉+1 = 2 fast-recovery
     bound, so the merge must abort — counting the duplicate would
     wrongly send it to re-validation (and commit). *)
  let reports = [ report 0 [ (0, ok) ]; report 0 [ (0, ok) ]; report 1 [] ] in
  Alcotest.(check bool) "dup report counts once" true
    (merge_status ~quorum:q3 reports t.Txn.tid = Some Txn.Aborted)

let test_duplicate_reports_not_a_majority () =
  Alcotest.check_raises "two reports from one replica rejected"
    (Invalid_argument "Epoch.merge: needs reports from a majority of distinct replicas")
    (fun () -> ignore (Epoch.merge ~quorum:q3 ~reports:[ report 0 []; report 0 [] ]))

let test_reordered_reports_same_merge () =
  let t1 = rmw ~seq:8 0 and t2 = rmw ~seq:9 1 in
  let reports =
    [
      report 0
        [
          (0, view ~status:Txn.Committed ~ts:(ts 1.0) t1);
          (0, view ~status:Txn.Validated_ok ~ts:(ts 2.0) t2);
        ];
      report 1 [ (0, view ~status:Txn.Validated_ok ~ts:(ts 2.0) t2) ];
    ]
  in
  let a = Epoch.merge ~quorum:q3 ~reports in
  let b = Epoch.merge ~quorum:q3 ~reports:(List.rev reports) in
  Alcotest.(check int) "same size" (List.length a) (List.length b);
  List.iter2
    (fun (_, (x : Replica.record_view)) (_, (y : Replica.record_view)) ->
      Alcotest.(check bool) "same tid order" true
        (Timestamp.Tid.equal x.txn.Txn.tid y.txn.Txn.tid);
      Alcotest.(check bool) "same status" true (x.status = y.status))
    a b

let test_rule1_final_wins () =
  let t = rmw ~seq:1 0 in
  (* One replica knows COMMITTED, another only VALIDATED-ABORT: the
     final outcome wins. *)
  let reports =
    [
      report 0 [ (0, view ~status:Txn.Committed ~ts:(ts 1.0) t) ];
      report 1 [ (0, view ~status:Txn.Validated_abort ~ts:(ts 1.0) t) ];
    ]
  in
  Alcotest.(check bool) "committed wins" true
    (merge_status ~quorum:q3 reports t.Txn.tid = Some Txn.Committed);
  let reports_abort =
    [
      report 0 [ (0, view ~status:Txn.Aborted ~ts:(ts 1.0) t) ];
      report 1 [ (0, view ~status:Txn.Validated_ok ~ts:(ts 1.0) t) ];
    ]
  in
  Alcotest.(check bool) "aborted wins" true
    (merge_status ~quorum:q3 reports_abort t.Txn.tid = Some Txn.Aborted)

let test_rule2_latest_accepted_view_wins () =
  let t = rmw ~seq:1 0 in
  let reports =
    [
      report 0
        [ (0, view ~v:1 ~accept_view:1 ~status:Txn.Accepted_abort ~ts:(ts 1.0) t) ];
      report 1
        [ (0, view ~v:3 ~accept_view:3 ~status:Txn.Accepted_commit ~ts:(ts 1.0) t) ];
    ]
  in
  Alcotest.(check bool) "view 3 decision adopted" true
    (merge_status ~quorum:q3 reports t.Txn.tid = Some Txn.Committed)

let test_rule3_majority_validated () =
  let t = rmw ~seq:1 0 in
  let ok = view ~status:Txn.Validated_ok ~ts:(ts 1.0) t in
  let reports = [ report 0 [ (0, ok) ]; report 1 [ (0, ok) ] ] in
  Alcotest.(check bool) "majority ok commits" true
    (merge_status ~quorum:q3 reports t.Txn.tid = Some Txn.Committed);
  let ab = view ~status:Txn.Validated_abort ~ts:(ts 1.0) t in
  let reports = [ report 0 [ (0, ab) ]; report 1 [ (0, ab) ] ] in
  Alcotest.(check bool) "majority abort aborts" true
    (merge_status ~quorum:q3 reports t.Txn.tid = Some Txn.Aborted)

let test_rule4_fast_path_candidate_revalidated () =
  (* n=5: reports from 3 replicas, 2 say VALIDATED-OK (= ⌈f/2⌉+1), one
     never saw the transaction. No conflicting commit in the merge:
     re-validation succeeds, the transaction commits. *)
  let t = rmw ~seq:1 0 in
  let ok = view ~status:Txn.Validated_ok ~ts:(ts 1.0) t in
  let reports = [ report 0 [ (0, ok) ]; report 1 [ (0, ok) ]; report 2 [] ] in
  Alcotest.(check bool) "fast-path candidate survives" true
    (merge_status ~quorum:q5 reports t.Txn.tid = Some Txn.Committed)

let test_rule4_candidate_conflicting_commit_aborts () =
  (* Same, but the merge already contains a committed conflicting
     transaction at a higher timestamp: re-validation must reject the
     candidate (its read would be stale). *)
  let cand = rmw ~seq:1 0 in
  let winner = rmw ~seq:2 0 in
  let ok_cand = view ~status:Txn.Validated_ok ~ts:(ts 5.0) cand in
  let committed_winner = view ~status:Txn.Committed ~ts:(ts 2.0) winner in
  let reports =
    [
      report 0 [ (0, ok_cand); (1, committed_winner) ];
      report 1 [ (0, ok_cand) ];
      report 2 [ (1, committed_winner) ];
    ]
  in
  let merged = Epoch.merge ~quorum:q5 ~reports in
  let status_of tid =
    List.find_map
      (fun (_, (v : Replica.record_view)) ->
        if Timestamp.Tid.equal v.txn.Txn.tid tid then Some v.status else None)
      merged
  in
  Alcotest.(check bool) "winner stays committed" true
    (status_of winner.Txn.tid = Some Txn.Committed);
  (* The candidate read version zero of key 0, but the winner installed
     version ts=2 below the candidate's ts=5: stale read, abort. *)
  Alcotest.(check bool) "candidate aborted" true
    (status_of cand.Txn.tid = Some Txn.Aborted)

let test_rule5_everything_else_aborts () =
  (* A single VALIDATED-OK report (below ⌈f/2⌉+1 = 2 for n=5) and a
     lone VALIDATED-ABORT both fall through to abort. *)
  let t1 = rmw ~seq:1 0 in
  let t2 = rmw ~seq:2 1 in
  let reports =
    [
      report 0 [ (0, view ~status:Txn.Validated_ok ~ts:(ts 1.0) t1) ];
      report 1 [ (1, view ~status:Txn.Validated_abort ~ts:(ts 2.0) t2) ];
      report 2 [];
    ]
  in
  Alcotest.(check bool) "lone ok aborts (n=5)" true
    (merge_status ~quorum:q5 reports t1.Txn.tid = Some Txn.Aborted);
  Alcotest.(check bool) "lone abort aborts" true
    (merge_status ~quorum:q5 reports t2.Txn.tid = Some Txn.Aborted)

let test_merge_all_final () =
  (* Whatever goes in, everything that comes out is final. *)
  let t1 = rmw ~seq:1 0 and t2 = rmw ~seq:2 1 and t3 = rmw ~seq:3 2 in
  let reports =
    [
      report 0
        [
          (0, view ~status:Txn.Validated_ok ~ts:(ts 1.0) t1);
          (1, view ~v:1 ~accept_view:1 ~status:Txn.Accepted_commit ~ts:(ts 2.0) t2);
        ];
      report 1
        [
          (0, view ~status:Txn.Validated_ok ~ts:(ts 1.0) t1);
          (2, view ~status:Txn.Validated_abort ~ts:(ts 3.0) t3);
        ];
    ]
  in
  let merged = Epoch.merge ~quorum:q3 ~reports in
  Alcotest.(check int) "all transactions present" 3 (List.length merged);
  List.iter
    (fun (_, (v : Replica.record_view)) ->
      Alcotest.(check bool) "final" true (Txn.is_final v.status))
    merged

let test_merge_preserves_core_partition () =
  let t = rmw ~seq:1 0 in
  let reports =
    [
      report 0 [ (3, view ~status:Txn.Validated_ok ~ts:(ts 1.0) t) ];
      report 1 [ (3, view ~status:Txn.Validated_ok ~ts:(ts 1.0) t) ];
    ]
  in
  match Epoch.merge ~quorum:q3 ~reports with
  | [ (core, _) ] -> Alcotest.(check int) "core preserved" 3 core
  | merged -> Alcotest.failf "expected one record, got %d" (List.length merged)

let test_merge_sorted_by_timestamp () =
  let t1 = rmw ~seq:1 0 and t2 = rmw ~seq:2 1 in
  let reports =
    [
      report 0
        [
          (0, view ~status:Txn.Committed ~ts:(ts 9.0) t1);
          (0, view ~status:Txn.Committed ~ts:(ts 2.0) t2);
        ];
      report 1 [];
    ]
  in
  match Epoch.merge ~quorum:q3 ~reports with
  | [ (_, a); (_, b) ] ->
      Alcotest.(check bool) "ascending ts" true (Timestamp.compare a.Replica.ts b.Replica.ts < 0)
  | _ -> Alcotest.fail "expected two records"

let () =
  Alcotest.run "epoch"
    [
      ( "merge",
        [
          Alcotest.test_case "requires majority" `Quick test_needs_majority;
          Alcotest.test_case "duplicate report counts once" `Quick
            test_duplicate_reports_not_double_counted;
          Alcotest.test_case "duplicates do not reach majority" `Quick
            test_duplicate_reports_not_a_majority;
          Alcotest.test_case "reordered reports merge identically" `Quick
            test_reordered_reports_same_merge;
          Alcotest.test_case "rule 1: final outcome wins" `Quick test_rule1_final_wins;
          Alcotest.test_case "rule 2: latest accepted view" `Quick
            test_rule2_latest_accepted_view_wins;
          Alcotest.test_case "rule 3: majority validated" `Quick
            test_rule3_majority_validated;
          Alcotest.test_case "rule 4: fast-path candidate commits" `Quick
            test_rule4_fast_path_candidate_revalidated;
          Alcotest.test_case "rule 4: conflicting commit rejects candidate" `Quick
            test_rule4_candidate_conflicting_commit_aborts;
          Alcotest.test_case "rule 5: fallback abort" `Quick
            test_rule5_everything_else_aborts;
          Alcotest.test_case "output is all-final" `Quick test_merge_all_final;
          Alcotest.test_case "core partition preserved" `Quick
            test_merge_preserves_core_partition;
          Alcotest.test_case "sorted by timestamp" `Quick test_merge_sorted_by_timestamp;
        ] );
    ]
