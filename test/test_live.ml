(* The live runtime, tested from all layers: mailbox semantics under
   real producer/consumer domains, the shared spawn helper, bit-exact
   sim equivalence of the extracted coordinator state machine, and a
   full protocol run on real domains with the serializability checker
   over the committed history. *)

module Mailbox = Mk_live.Mailbox
module Spawn = Mk_live.Spawn
module Runtime = Mk_live.Runtime
module Link = Mk_live.Link
module Checker = Mk_harness.Checker
module Chaos = Mk_harness.Chaos
module Nemesis = Mk_fault.Nemesis
module Network = Mk_net.Network
module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Intf = Mk_model.System_intf
module Sim = Mk_meerkat.Sim_system
module Workload = Mk_workload.Workload

(* --- mailbox --- *)

let test_mailbox_backpressure () =
  let mb = Mailbox.create ~capacity:4 in
  for i = 1 to 4 do
    Alcotest.(check bool) "push while space" true (Mailbox.try_push mb i)
  done;
  Alcotest.(check bool) "full mailbox refuses" false (Mailbox.try_push mb 5);
  Alcotest.(check int) "length at capacity" 4 (Mailbox.length mb);
  Alcotest.(check (option int)) "pop oldest" (Some 1) (Mailbox.try_pop mb);
  Alcotest.(check bool) "pop frees a slot" true (Mailbox.try_push mb 5);
  Alcotest.(check bool) "and only one" false (Mailbox.try_push mb 6)

let test_mailbox_fifo () =
  let mb = Mailbox.create ~capacity:128 in
  for i = 1 to 100 do
    Mailbox.push mb i
  done;
  for i = 1 to 100 do
    Alcotest.(check (option int)) "FIFO" (Some i) (Mailbox.try_pop mb)
  done;
  Alcotest.(check (option int)) "drained" None (Mailbox.try_pop mb)

(* The batched drain: partial drains with interleaved pushes must
   preserve global FIFO, report exact counts, and — because each slot
   is released before its callback runs — tolerate a handler that
   pushes back into the same mailbox mid-drain. *)
let test_mailbox_drain_partial () =
  let mb = Mailbox.create ~capacity:16 in
  for i = 1 to 10 do
    Mailbox.push mb i
  done;
  let got = ref [] in
  let f x = got := x :: !got in
  Alcotest.(check int) "partial drain spends its budget" 4
    (Mailbox.drain mb ~max:4 f);
  Alcotest.(check (list int)) "first burst in order" [ 1; 2; 3; 4 ]
    (List.rev !got);
  (* Push more mid-stream: older messages still come out first. *)
  for i = 11 to 13 do
    Mailbox.push mb i
  done;
  Alcotest.(check int) "second partial drain" 4 (Mailbox.drain mb ~max:4 f);
  Alcotest.(check int) "oversized budget takes the remainder" 5
    (Mailbox.drain mb ~max:100 f);
  Alcotest.(check (list int)) "global FIFO across partial drains"
    (List.init 13 (fun i -> i + 1))
    (List.rev !got);
  Alcotest.(check int) "empty drain consumes nothing" 0
    (Mailbox.drain mb ~max:8 f);
  (* Reentrant push: the handler's own push lands behind the head and
     is picked up by the same drain while budget remains. *)
  Mailbox.push mb 99;
  let seen = ref [] in
  let n =
    Mailbox.drain mb ~max:8 (fun x ->
        seen := x :: !seen;
        if x = 99 then Mailbox.push mb 100)
  in
  Alcotest.(check int) "reentrant push drained in the same burst" 2 n;
  Alcotest.(check (list int)) "in FIFO order" [ 99; 100 ] (List.rev !seen);
  Alcotest.(check int) "nothing left behind" 0 (Mailbox.length mb)

(* Four producer domains hammer one small (capacity 16, so constantly
   full) mailbox; the consumer checks per-producer FIFO and that every
   message arrives exactly once. A lost message would hang the test,
   which is the loudest possible failure. *)
let test_mailbox_mpsc () =
  let producers = 4 and per = 500 in
  let mb = Mailbox.create ~capacity:16 in
  let results =
    Spawn.parallel ~domains:(producers + 1) (fun id ->
        if id = 0 then begin
          let seen = Array.make producers 0 in
          let bad = ref 0 in
          for _ = 1 to producers * per do
            let p, n = Mailbox.pop mb in
            if n <> seen.(p - 1) + 1 then incr bad;
            seen.(p - 1) <- n
          done;
          Some (Array.to_list seen, !bad)
        end
        else begin
          for n = 1 to per do
            Mailbox.push mb (id, n)
          done;
          None
        end)
  in
  match List.hd results with
  | Some (seen, bad) ->
      Alcotest.(check (list int))
        "every producer's last message" [ per; per; per; per ] seen;
      Alcotest.(check int) "no gap, duplicate, or reorder per sender" 0 bad
  | None -> Alcotest.fail "consumer produced no result"

let test_mailbox_park_wake () =
  let mb = Mailbox.create ~capacity:4 in
  (* Consumer exhausts its spin budget immediately and parks; the push
     from this domain must wake it. *)
  let consumer = Spawn.spawn (fun () -> Mailbox.pop ~spins:1 mb) in
  Unix.sleepf 0.05;
  Mailbox.push mb 42;
  Alcotest.(check int) "woken with the message" 42 (Spawn.join consumer)

let test_mailbox_capacity_validated () =
  (match Mailbox.create ~capacity:3 with
  | _ -> Alcotest.fail "non-power-of-two accepted"
  | exception Invalid_argument _ -> ());
  match Mailbox.create ~capacity:1 with
  | _ -> Alcotest.fail "capacity 1 accepted"
  | exception Invalid_argument _ -> ()

(* --- spawn --- *)

let test_spawn_parallel () =
  Alcotest.(check (list int))
    "results in index order" [ 0; 1; 2; 3 ]
    (Spawn.parallel ~domains:4 (fun id -> id));
  let results, wall = Spawn.timed ~domains:2 (fun id -> id * 10) in
  Alcotest.(check (list int)) "timed results" [ 0; 10 ] results;
  Alcotest.(check bool) "elapsed is non-negative" true (wall >= 0.0)

(* --- faulty links --- *)

let window ~from_t ~until_t rule =
  { Nemesis.w_name = "test"; from_t; until_t; scope = Nemesis.All_links; rule }

let link_ctx ?(plan = { Nemesis.windows = []; crashes = [] }) now =
  Link.create ~plan ~seed:7 ~now:(fun () -> !now)

let test_link_passthrough () =
  let hits = ref 0 in
  Link.via None
    ~src:(Network.Client 0) ~dst:(Network.Replica 0)
    ~push:(fun () -> incr hits);
  Alcotest.(check int) "via None is the bare push" 1 !hits;
  (* A windowless plan delivers everything and draws no randomness. *)
  let now = ref 0.0 in
  let ctx = link_ctx now in
  for _ = 1 to 50 do
    Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 1)
      ~push:(fun () -> incr hits)
  done;
  Alcotest.(check int) "all delivered" 51 !hits;
  Alcotest.(check (triple int int int)) "no faults counted" (0, 0, 0)
    (Link.stats ctx)

let test_link_down_discard () =
  let now = ref 0.0 in
  let ctx = link_ctx now in
  let hits = ref 0 in
  let push () = incr hits in
  Link.set_down ctx (Network.Replica 1) ~until:100.0;
  Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 1) ~push;
  Link.send ctx ~src:(Network.Replica 1) ~dst:(Network.Replica 0) ~push;
  Alcotest.(check int) "to and from a down endpoint discarded" 0 !hits;
  Link.send ctx ~src:(Network.Replica 0) ~dst:(Network.Replica 2) ~push;
  Alcotest.(check int) "other links unaffected" 1 !hits;
  (* Reboot deadline passed: traffic flows again without set_up. *)
  now := 150.0;
  Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 1) ~push;
  Alcotest.(check int) "delivered after the reboot deadline" 2 !hits;
  Alcotest.(check (triple int int int)) "discards counted as drops" (2, 0, 0)
    (Link.stats ctx)

let test_link_set_up () =
  let now = ref 0.0 in
  let ctx = link_ctx now in
  let hits = ref 0 in
  let push () = incr hits in
  Link.set_down ctx (Network.Replica 2) ~until:infinity;
  Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 2) ~push;
  Alcotest.(check bool) "down" true (Link.is_down ctx (Network.Replica 2));
  Link.set_up ctx (Network.Replica 2);
  Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 2) ~push;
  Alcotest.(check int) "explicit reboot clears the gate" 1 !hits

let test_link_drop_and_dup () =
  let now = ref 10.0 in
  let drop_all =
    { Network.pass with Network.drop = 1.0 }
  in
  let ctx =
    link_ctx ~plan:{ Nemesis.windows = [ window ~from_t:0.0 ~until_t:100.0 drop_all ];
                     crashes = [] }
      now
  in
  let hits = ref 0 in
  let push () = incr hits in
  Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 0) ~push;
  Alcotest.(check int) "dropped" 0 !hits;
  now := 200.0 (* window closed *);
  Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 0) ~push;
  Alcotest.(check int) "delivered outside the window" 1 !hits;
  let dup_all = { Network.pass with Network.dup = 1.0 } in
  let now = ref 10.0 in
  let ctx =
    link_ctx ~plan:{ Nemesis.windows = [ window ~from_t:0.0 ~until_t:100.0 dup_all ];
                     crashes = [] }
      now
  in
  let hits = ref 0 in
  Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 0)
    ~push:(fun () -> incr hits);
  Alcotest.(check int) "delivered twice back to back" 2 !hits;
  Alcotest.(check (triple int int int)) "one duplicate counted" (0, 1, 0)
    (Link.stats ctx)

let test_link_delay_wheel () =
  let now = ref 10.0 in
  let spike =
    { Network.pass with Network.delay_prob = 1.0; delay = 50.0 }
  in
  (* Window closes at t=15: the first send is spiked, the second (at
     t=20) sails through and overtakes it — the reorder the sim's
     delay spikes model. *)
  let ctx =
    link_ctx ~plan:{ Nemesis.windows = [ window ~from_t:0.0 ~until_t:15.0 spike ];
                     crashes = [] }
      now
  in
  let got = ref [] in
  let push x () = got := x :: !got in
  Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 0) ~push:(push `Spiked);
  Alcotest.(check int) "parked on the wheel" 1 (Link.pending ctx);
  now := 20.0;
  Link.send ctx ~src:(Network.Client 0) ~dst:(Network.Replica 0) ~push:(push `Prompt);
  Link.flush ctx;
  Alcotest.(check int) "not due yet" 1 (Link.pending ctx);
  now := 70.0;
  Link.flush ctx;
  Alcotest.(check int) "wheel drained" 0 (Link.pending ctx);
  Alcotest.(check bool) "overtaken by the later message" true
    (List.rev !got = [ `Prompt; `Spiked ]);
  Alcotest.(check (triple int int int)) "one delay counted" (0, 0, 1)
    (Link.stats ctx)

(* --- sim/live equivalence of the extracted protocol --- *)

(* Golden decision counts captured from the simulator BEFORE the
   coordinator state machine was extracted into Protocol (the
   pre-refactor Sim_system drove sends and timers inline). The
   refactored simulator routes every decision through the same
   Protocol code the live runtime executes; these runs — spanning the
   fast path, drop-induced retransmissions + slow paths, and a replica
   crash — must stay bit-identical: (acks, naks, fast, slow,
   retransmits) per (seed, drops?, crash?). *)
let golden =
  [
    (1, false, false, (556, 84, 615, 25, 0));
    (1, true, false, (477, 163, 406, 234, 101));
    (1, false, true, (557, 83, 493, 147, 2));
    (2, false, false, (561, 79, 627, 13, 0));
    (2, true, false, (463, 177, 405, 235, 88));
    (2, false, true, (561, 79, 499, 141, 4));
    (3, false, false, (557, 83, 622, 18, 0));
    (3, true, false, (466, 174, 366, 274, 84));
    (3, false, true, (564, 76, 491, 149, 3));
    (4, false, false, (551, 89, 628, 12, 0));
    (4, true, false, (493, 147, 389, 251, 77));
    (4, false, true, (554, 86, 496, 144, 2));
    (5, false, false, (536, 104, 621, 19, 0));
    (5, true, false, (443, 197, 394, 246, 94));
    (5, false, true, (543, 97, 488, 152, 2));
    (6, false, false, (558, 82, 620, 20, 0));
    (6, true, false, (447, 193, 374, 266, 96));
    (6, false, true, (561, 79, 485, 155, 3));
    (7, false, false, (549, 91, 622, 18, 0));
    (7, true, false, (465, 175, 393, 247, 88));
    (7, false, true, (552, 88, 495, 145, 4));
    (8, false, false, (555, 85, 617, 23, 0));
    (8, true, false, (471, 169, 383, 257, 83));
    (8, false, true, (561, 79, 504, 136, 3));
  ]

let scenario ~seed ~drop ~crash =
  let cfg =
    {
      Sim.default_config with
      threads = 4;
      n_clients = 16;
      keys = 192;
      seed;
      transport =
        (if drop then Transport.with_drop Transport.erpc 0.05
         else Transport.erpc);
    }
  in
  let engine = Engine.create ~seed () in
  let sys = Sim.create engine cfg in
  let wl =
    Workload.ycsb_t
      ~rng:(Mk_util.Rng.create ~seed:(seed + 17))
      ~keys:cfg.Sim.keys ~theta:0.6
  in
  let acks = ref 0 and naks = ref 0 in
  let rec loop c remaining =
    if remaining > 0 then
      Sim.submit sys ~client:c (Workload.next wl) ~on_done:(fun ~committed ->
          if committed then incr acks else incr naks;
          loop c (remaining - 1))
  in
  for c = 0 to cfg.Sim.n_clients - 1 do
    loop c 40
  done;
  if crash then Engine.schedule_at engine 1500.0 (fun () -> Sim.crash_replica sys 2);
  Engine.run ~max_events:50_000_000 engine;
  let counters = Sim.counters sys in
  ( !acks,
    !naks,
    counters.Intf.fast_path,
    counters.Intf.slow_path,
    counters.Intf.retransmits )

let test_sim_equivalence () =
  List.iter
    (fun (seed, drop, crash, (acks, naks, fast, slow, retr)) ->
      let a, n, f, s, r = scenario ~seed ~drop ~crash in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d drop=%b crash=%b" seed drop crash)
        [ acks; naks; fast; slow; retr ]
        [ a; n; f; s; r ])
    golden

(* --- the live runtime itself --- *)

let live_cfg seed =
  {
    Runtime.default_config with
    server_domains = 2;
    coordinators = 2;
    clients = 8;
    keys = 256;
    theta = 0.6;
    txns_per_client = 25;
    seed;
  }

let check_serializable what (r : Runtime.report) =
  Alcotest.(check int)
    (what ^ ": history matches counter")
    r.Runtime.committed_count
    (List.length r.Runtime.committed);
  match Checker.check r.Runtime.committed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "%s: %a" what Checker.pp_violation v

let test_live_smoke () =
  let r = Runtime.run (live_cfg 1) in
  Alcotest.(check int)
    "every transaction decided" (8 * 25)
    (r.Runtime.committed_count + r.Runtime.aborted);
  Alcotest.(check bool) "some commits" true (r.Runtime.committed_count > 0);
  Alcotest.(check bool) "fast path used" true (r.Runtime.fast_path > 0);
  check_serializable "smoke" r

let test_live_serializable_across_seeds () =
  List.iter
    (fun seed -> check_serializable (Printf.sprintf "seed %d" seed)
        (Runtime.run (live_cfg seed)))
    [ 2; 3; 4 ]

let test_live_single_domain () =
  let r =
    Runtime.run
      {
        (live_cfg 5) with
        Runtime.server_domains = 1;
        coordinators = 1;
        clients = 4;
      }
  in
  Alcotest.(check int)
    "every transaction decided" (4 * 25)
    (r.Runtime.committed_count + r.Runtime.aborted);
  check_serializable "single domain" r

(* --- chaos on live domains --- *)

let test_coord_inbox_floor () =
  (* 1 coordinator x 8 clients x 3 replicas -> floor 96 > 16. *)
  (match
     Runtime.run
       {
         (live_cfg 1) with
         Runtime.coordinators = 1;
         clients = 8;
         coord_inbox = 16;
       }
   with
  | _ -> Alcotest.fail "undersized coord_inbox accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "names the deadlock-freedom floor" true
        (let re = "deadlock-freedom floor" in
         let n = String.length re in
         let rec find i =
           i + n <= String.length msg && (String.sub msg i n = re || find (i + 1))
         in
         find 0));
  (* The defaults clear the floor: 2 coordinators x 8 clients -> 48. *)
  match Runtime.run { (live_cfg 1) with Runtime.txns_per_client = 1 } with
  | _ -> ()
  | exception Invalid_argument msg -> Alcotest.failf "defaults rejected: %s" msg

let test_chaos_needs_duration () =
  let horizon_us = 100_000.0 in
  let chaos =
    {
      Runtime.plan = { Nemesis.windows = []; crashes = [] };
      detector = Runtime.chaos_detector_cfg ~horizon_us;
      horizon_us;
      settle_us = 50_000.0;
    }
  in
  match Runtime.run { (live_cfg 1) with Runtime.chaos = Some chaos } with
  | _ -> Alcotest.fail "chaos without a duration accepted"
  | exception Invalid_argument _ -> ()

(* One coordinator kill, no link faults: while down its inbox is
   popped and discarded (fail-stop discard), on reboot the backlog is
   purged and every in-flight attempt resumed. Every submission still
   reaches an ack with a serializable history — replies from before
   the kill that survive in the mailbox carry stale seqs and must all
   be rejected by the protocol's seq guard, or the counters and the
   checker would disagree. *)
let test_live_coordinator_kill () =
  let horizon_us = 400_000.0 in
  let chaos =
    {
      Runtime.plan =
        {
          Nemesis.windows = [];
          crashes =
            [
              Nemesis.Coordinator_crash
                { at = 0.25 *. horizon_us; client = 0; down_for = 0.1 *. horizon_us };
            ];
        };
      detector = Runtime.chaos_detector_cfg ~horizon_us;
      horizon_us;
      settle_us = horizon_us /. 2.0;
    }
  in
  let r =
    Runtime.run
      {
        (live_cfg 6) with
        Runtime.clients = 4;
        txns_per_client = 0;
        duration = Some (horizon_us /. 1e6);
        rto_us = horizon_us /. 50.0;
        chaos = Some chaos;
      }
  in
  Alcotest.(check bool) "the kill was injected" true (r.Runtime.fault_events >= 1);
  Alcotest.(check int)
    "reboot drain: every submission still acked"
    r.Runtime.submitted r.Runtime.acked;
  Alcotest.(check int)
    "no stale-seq acks: counter matches the history"
    r.Runtime.committed_count
    (List.length r.Runtime.committed);
  check_serializable "coordinator kill" r

(* A replica fail-stop through the full live chaos harness: the
   heartbeat detector must notice over real mailboxes, run a real
   §5.3.1 epoch change, and all five end-of-run invariants must hold
   (in particular available — the victim was reintegrated — and
   bounded — write-backs it missed while down were recovered). *)
let test_live_replica_crash_harness () =
  let report =
    Chaos.run
      {
        Chaos.default_live_cfg with
        Chaos.seed = 3;
        profile = Nemesis.Crash_replica;
        n_clients = 4;
      }
  in
  Alcotest.(check bool)
    (Format.asprintf "six invariants hold: %a" Chaos.pp_report report)
    true (Chaos.passed report);
  Alcotest.(check bool)
    "a detector-driven epoch change ran on real domains" true
    (report.Chaos.epoch_changes >= 1);
  Alcotest.(check bool)
    "the crash discarded traffic at the link" true
    (report.Chaos.dropped > 0)

(* Crash-reboot on real domains and real files: the same victim
   fail-stops twice, each reboot is merged back by the heartbeat
   detector, and the durable invariant replays the per-(replica, core)
   WAL + snapshot files off disk through the exact Recover reboot
   path. Four seeds — the acceptance matrix. *)
let test_live_crash_reboot_harness () =
  List.iter
    (fun seed ->
      let report =
        Chaos.run
          {
            Chaos.default_live_cfg with
            Chaos.seed;
            profile = Nemesis.Crash_reboot;
            n_clients = 4;
          }
      in
      Alcotest.(check bool)
        (Format.asprintf "seed %d: six invariants hold: %a" seed
           Chaos.pp_report report)
        true (Chaos.passed report);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: both reboots merged back" seed)
        true
        (report.Chaos.epoch_changes >= 2))
    [ 1; 2; 3; 4 ]

let () =
  Mk_check.Owner.enable ();
  Alcotest.run "live"
    [
      ( "mailbox",
        [
          Alcotest.test_case "bounded backpressure" `Quick
            test_mailbox_backpressure;
          Alcotest.test_case "FIFO" `Quick test_mailbox_fifo;
          Alcotest.test_case "partial drains" `Quick test_mailbox_drain_partial;
          Alcotest.test_case "4 producers x 1 consumer, no loss/dup" `Quick
            test_mailbox_mpsc;
          Alcotest.test_case "park and wake on empty" `Quick
            test_mailbox_park_wake;
          Alcotest.test_case "capacity validated" `Quick
            test_mailbox_capacity_validated;
        ] );
      ( "spawn",
        [ Alcotest.test_case "parallel + timed" `Quick test_spawn_parallel ] );
      ( "link",
        [
          Alcotest.test_case "fault-free passthrough" `Quick
            test_link_passthrough;
          Alcotest.test_case "down endpoint discards" `Quick
            test_link_down_discard;
          Alcotest.test_case "explicit reboot" `Quick test_link_set_up;
          Alcotest.test_case "drop and duplicate verdicts" `Quick
            test_link_drop_and_dup;
          Alcotest.test_case "delay wheel reorders" `Quick
            test_link_delay_wheel;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "extracted protocol = pre-refactor sim, 24 runs"
            `Quick test_sim_equivalence;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "full protocol on real domains" `Quick
            test_live_smoke;
          Alcotest.test_case "serializable across seeds" `Quick
            test_live_serializable_across_seeds;
          Alcotest.test_case "single server domain" `Quick
            test_live_single_domain;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "coord_inbox floor enforced" `Quick
            test_coord_inbox_floor;
          Alcotest.test_case "chaos requires a duration" `Quick
            test_chaos_needs_duration;
          Alcotest.test_case "coordinator kill: drain, resume, no stale acks"
            `Quick test_live_coordinator_kill;
          Alcotest.test_case "replica crash through the live harness" `Quick
            test_live_replica_crash_harness;
          Alcotest.test_case "crash-reboot through the live harness, 4 seeds"
            `Quick test_live_crash_reboot_harness;
        ] );
    ]
