(* The live runtime, tested from all layers: mailbox semantics under
   real producer/consumer domains, the shared spawn helper, bit-exact
   sim equivalence of the extracted coordinator state machine, and a
   full protocol run on real domains with the serializability checker
   over the committed history. *)

module Mailbox = Mk_live.Mailbox
module Spawn = Mk_live.Spawn
module Runtime = Mk_live.Runtime
module Checker = Mk_harness.Checker
module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Intf = Mk_model.System_intf
module Sim = Mk_meerkat.Sim_system
module Workload = Mk_workload.Workload

(* --- mailbox --- *)

let test_mailbox_backpressure () =
  let mb = Mailbox.create ~capacity:4 in
  for i = 1 to 4 do
    Alcotest.(check bool) "push while space" true (Mailbox.try_push mb i)
  done;
  Alcotest.(check bool) "full mailbox refuses" false (Mailbox.try_push mb 5);
  Alcotest.(check int) "length at capacity" 4 (Mailbox.length mb);
  Alcotest.(check (option int)) "pop oldest" (Some 1) (Mailbox.try_pop mb);
  Alcotest.(check bool) "pop frees a slot" true (Mailbox.try_push mb 5);
  Alcotest.(check bool) "and only one" false (Mailbox.try_push mb 6)

let test_mailbox_fifo () =
  let mb = Mailbox.create ~capacity:128 in
  for i = 1 to 100 do
    Mailbox.push mb i
  done;
  for i = 1 to 100 do
    Alcotest.(check (option int)) "FIFO" (Some i) (Mailbox.try_pop mb)
  done;
  Alcotest.(check (option int)) "drained" None (Mailbox.try_pop mb)

(* Four producer domains hammer one small (capacity 16, so constantly
   full) mailbox; the consumer checks per-producer FIFO and that every
   message arrives exactly once. A lost message would hang the test,
   which is the loudest possible failure. *)
let test_mailbox_mpsc () =
  let producers = 4 and per = 500 in
  let mb = Mailbox.create ~capacity:16 in
  let results =
    Spawn.parallel ~domains:(producers + 1) (fun id ->
        if id = 0 then begin
          let seen = Array.make producers 0 in
          let bad = ref 0 in
          for _ = 1 to producers * per do
            let p, n = Mailbox.pop mb in
            if n <> seen.(p - 1) + 1 then incr bad;
            seen.(p - 1) <- n
          done;
          Some (Array.to_list seen, !bad)
        end
        else begin
          for n = 1 to per do
            Mailbox.push mb (id, n)
          done;
          None
        end)
  in
  match List.hd results with
  | Some (seen, bad) ->
      Alcotest.(check (list int))
        "every producer's last message" [ per; per; per; per ] seen;
      Alcotest.(check int) "no gap, duplicate, or reorder per sender" 0 bad
  | None -> Alcotest.fail "consumer produced no result"

let test_mailbox_park_wake () =
  let mb = Mailbox.create ~capacity:4 in
  (* Consumer exhausts its spin budget immediately and parks; the push
     from this domain must wake it. *)
  let consumer = Spawn.spawn (fun () -> Mailbox.pop ~spins:1 mb) in
  Unix.sleepf 0.05;
  Mailbox.push mb 42;
  Alcotest.(check int) "woken with the message" 42 (Spawn.join consumer)

let test_mailbox_capacity_validated () =
  (match Mailbox.create ~capacity:3 with
  | _ -> Alcotest.fail "non-power-of-two accepted"
  | exception Invalid_argument _ -> ());
  match Mailbox.create ~capacity:1 with
  | _ -> Alcotest.fail "capacity 1 accepted"
  | exception Invalid_argument _ -> ()

(* --- spawn --- *)

let test_spawn_parallel () =
  Alcotest.(check (list int))
    "results in index order" [ 0; 1; 2; 3 ]
    (Spawn.parallel ~domains:4 (fun id -> id));
  let results, wall = Spawn.timed ~domains:2 (fun id -> id * 10) in
  Alcotest.(check (list int)) "timed results" [ 0; 10 ] results;
  Alcotest.(check bool) "elapsed is non-negative" true (wall >= 0.0)

(* --- sim/live equivalence of the extracted protocol --- *)

(* Golden decision counts captured from the simulator BEFORE the
   coordinator state machine was extracted into Protocol (the
   pre-refactor Sim_system drove sends and timers inline). The
   refactored simulator routes every decision through the same
   Protocol code the live runtime executes; these runs — spanning the
   fast path, drop-induced retransmissions + slow paths, and a replica
   crash — must stay bit-identical: (acks, naks, fast, slow,
   retransmits) per (seed, drops?, crash?). *)
let golden =
  [
    (1, false, false, (556, 84, 615, 25, 0));
    (1, true, false, (477, 163, 406, 234, 101));
    (1, false, true, (557, 83, 493, 147, 2));
    (2, false, false, (561, 79, 627, 13, 0));
    (2, true, false, (463, 177, 405, 235, 88));
    (2, false, true, (561, 79, 499, 141, 4));
    (3, false, false, (557, 83, 622, 18, 0));
    (3, true, false, (466, 174, 366, 274, 84));
    (3, false, true, (564, 76, 491, 149, 3));
    (4, false, false, (551, 89, 628, 12, 0));
    (4, true, false, (493, 147, 389, 251, 77));
    (4, false, true, (554, 86, 496, 144, 2));
    (5, false, false, (536, 104, 621, 19, 0));
    (5, true, false, (443, 197, 394, 246, 94));
    (5, false, true, (543, 97, 488, 152, 2));
    (6, false, false, (558, 82, 620, 20, 0));
    (6, true, false, (447, 193, 374, 266, 96));
    (6, false, true, (561, 79, 485, 155, 3));
    (7, false, false, (549, 91, 622, 18, 0));
    (7, true, false, (465, 175, 393, 247, 88));
    (7, false, true, (552, 88, 495, 145, 4));
    (8, false, false, (555, 85, 617, 23, 0));
    (8, true, false, (471, 169, 383, 257, 83));
    (8, false, true, (561, 79, 504, 136, 3));
  ]

let scenario ~seed ~drop ~crash =
  let cfg =
    {
      Sim.default_config with
      threads = 4;
      n_clients = 16;
      keys = 192;
      seed;
      transport =
        (if drop then Transport.with_drop Transport.erpc 0.05
         else Transport.erpc);
    }
  in
  let engine = Engine.create ~seed () in
  let sys = Sim.create engine cfg in
  let wl =
    Workload.ycsb_t
      ~rng:(Mk_util.Rng.create ~seed:(seed + 17))
      ~keys:cfg.Sim.keys ~theta:0.6
  in
  let acks = ref 0 and naks = ref 0 in
  let rec loop c remaining =
    if remaining > 0 then
      Sim.submit sys ~client:c (Workload.next wl) ~on_done:(fun ~committed ->
          if committed then incr acks else incr naks;
          loop c (remaining - 1))
  in
  for c = 0 to cfg.Sim.n_clients - 1 do
    loop c 40
  done;
  if crash then Engine.schedule_at engine 1500.0 (fun () -> Sim.crash_replica sys 2);
  Engine.run ~max_events:50_000_000 engine;
  let counters = Sim.counters sys in
  ( !acks,
    !naks,
    counters.Intf.fast_path,
    counters.Intf.slow_path,
    counters.Intf.retransmits )

let test_sim_equivalence () =
  List.iter
    (fun (seed, drop, crash, (acks, naks, fast, slow, retr)) ->
      let a, n, f, s, r = scenario ~seed ~drop ~crash in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d drop=%b crash=%b" seed drop crash)
        [ acks; naks; fast; slow; retr ]
        [ a; n; f; s; r ])
    golden

(* --- the live runtime itself --- *)

let live_cfg seed =
  {
    Runtime.default_config with
    server_domains = 2;
    coordinators = 2;
    clients = 8;
    keys = 256;
    theta = 0.6;
    txns_per_client = 25;
    seed;
  }

let check_serializable what (r : Runtime.report) =
  Alcotest.(check int)
    (what ^ ": history matches counter")
    r.Runtime.committed_count
    (List.length r.Runtime.committed);
  match Checker.check r.Runtime.committed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "%s: %a" what Checker.pp_violation v

let test_live_smoke () =
  let r = Runtime.run (live_cfg 1) in
  Alcotest.(check int)
    "every transaction decided" (8 * 25)
    (r.Runtime.committed_count + r.Runtime.aborted);
  Alcotest.(check bool) "some commits" true (r.Runtime.committed_count > 0);
  Alcotest.(check bool) "fast path used" true (r.Runtime.fast_path > 0);
  check_serializable "smoke" r

let test_live_serializable_across_seeds () =
  List.iter
    (fun seed -> check_serializable (Printf.sprintf "seed %d" seed)
        (Runtime.run (live_cfg seed)))
    [ 2; 3; 4 ]

let test_live_single_domain () =
  let r =
    Runtime.run
      {
        (live_cfg 5) with
        Runtime.server_domains = 1;
        coordinators = 1;
        clients = 4;
      }
  in
  Alcotest.(check int)
    "every transaction decided" (4 * 25)
    (r.Runtime.committed_count + r.Runtime.aborted);
  check_serializable "single domain" r

let () =
  Mk_check.Owner.enable ();
  Alcotest.run "live"
    [
      ( "mailbox",
        [
          Alcotest.test_case "bounded backpressure" `Quick
            test_mailbox_backpressure;
          Alcotest.test_case "FIFO" `Quick test_mailbox_fifo;
          Alcotest.test_case "4 producers x 1 consumer, no loss/dup" `Quick
            test_mailbox_mpsc;
          Alcotest.test_case "park and wake on empty" `Quick
            test_mailbox_park_wake;
          Alcotest.test_case "capacity validated" `Quick
            test_mailbox_capacity_validated;
        ] );
      ( "spawn",
        [ Alcotest.test_case "parallel + timed" `Quick test_spawn_parallel ] );
      ( "equivalence",
        [
          Alcotest.test_case "extracted protocol = pre-refactor sim, 24 runs"
            `Quick test_sim_equivalence;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "full protocol on real domains" `Quick
            test_live_smoke;
          Alcotest.test_case "serializable across seeds" `Quick
            test_live_serializable_across_seeds;
          Alcotest.test_case "single server domain" `Quick
            test_live_single_domain;
        ] );
    ]
