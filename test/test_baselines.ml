(* Correctness tests for the three comparison systems (§6.1): they
   must produce correct, convergent results — their differences from
   Meerkat are performance differences, not semantic ones. *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Cluster = Mk_cluster.Cluster
module Tapir = Mk_baselines.Tapir
module Pb = Mk_baselines.Meerkat_pb
module Kuafu = Mk_baselines.Kuafupp
module Systems = Mk_systems.Systems

let base_cfg =
  { Cluster.default_config with threads = 4; n_clients = 8; keys = 64; seed = 9 }

(* Drive [per_client] closed-loop transactions per client through any
   packed system. *)
let drive engine (Intf.Packed ((module S), sys)) ~clients ~per_client ~request =
  let outcomes = ref [] in
  let rec loop c remaining =
    if remaining > 0 then
      S.submit sys ~client:c (request c remaining) ~on_done:(fun ~committed ->
          outcomes := (c, remaining, committed) :: !outcomes;
          loop c (remaining - 1))
  in
  for c = 0 to clients - 1 do
    loop c per_client
  done;
  Engine.run ~max_events:20_000_000 engine;
  List.rev !outcomes

let rmw_request c i =
  let key = ((c * 7) + (i * 13)) mod 64 in
  { Intf.reads = [| key |]; writes = [| (key, (c * 1000) + i) |] }

let disjoint_request c i =
  let key = (c * 8) + (i mod 8) in
  { Intf.reads = [| key |]; writes = [| (key, i) |] }

let all_kinds =
  [ Systems.Meerkat; Systems.Meerkat_pb; Systems.Tapir; Systems.Kuafupp ]

let test_every_system_completes () =
  List.iter
    (fun kind ->
      let engine = Engine.create ~seed:1 () in
      let packed, _ = Systems.build kind engine base_cfg in
      let outcomes =
        drive engine packed ~clients:8 ~per_client:10 ~request:rmw_request
      in
      Alcotest.(check int)
        (Systems.name kind ^ " all decided")
        80 (List.length outcomes))
    all_kinds

let test_disjoint_txns_commit_everywhere () =
  List.iter
    (fun kind ->
      let engine = Engine.create ~seed:2 () in
      let packed, _ = Systems.build kind engine base_cfg in
      let outcomes =
        drive engine packed ~clients:8 ~per_client:8 ~request:disjoint_request
      in
      List.iter
        (fun (_, _, committed) ->
          Alcotest.(check bool) (Systems.name kind ^ " commits") true committed)
        outcomes)
    all_kinds

(* Per-system convergence: after quiescence all replicas hold the same
   committed values. *)
let converged name read n_keys =
  for key = 0 to n_keys - 1 do
    let v0 = read ~replica:0 ~key in
    let v1 = read ~replica:1 ~key in
    let v2 = read ~replica:2 ~key in
    Alcotest.(check bool)
      (Printf.sprintf "%s key %d converged" name key)
      true
      (v0 = v1 && v1 = v2)
  done

let test_tapir_convergence () =
  let engine = Engine.create ~seed:3 () in
  let sys = Tapir.create engine base_cfg in
  let packed =
    Intf.Packed
      ( (module struct
          type t = Tapir.t

          let name = Tapir.name
          let threads = Tapir.threads
          let submit = Tapir.submit
          let obs = Tapir.obs
        end),
        sys )
  in
  ignore (drive engine packed ~clients:8 ~per_client:15 ~request:rmw_request);
  converged "TAPIR" (fun ~replica ~key -> Tapir.read_committed sys ~replica ~key) 64

let test_pb_convergence () =
  let engine = Engine.create ~seed:4 () in
  let sys = Pb.create engine base_cfg in
  let packed =
    Intf.Packed
      ( (module struct
          type t = Pb.t

          let name = Pb.name
          let threads = Pb.threads
          let submit = Pb.submit
          let obs = Pb.obs
        end),
        sys )
  in
  ignore (drive engine packed ~clients:8 ~per_client:15 ~request:rmw_request);
  converged "MEERKAT-PB" (fun ~replica ~key -> Pb.read_committed sys ~replica ~key) 64

let test_kuafu_convergence () =
  let engine = Engine.create ~seed:5 () in
  let sys = Kuafu.create engine base_cfg in
  let packed =
    Intf.Packed
      ( (module struct
          type t = Kuafu.t

          let name = Kuafu.name
          let threads = Kuafu.threads
          let submit = Kuafu.submit
          let obs = Kuafu.obs
        end),
        sys )
  in
  let outcomes = drive engine packed ~clients:8 ~per_client:15 ~request:rmw_request in
  converged "KuaFu++" (fun ~replica ~key -> Kuafu.read_committed sys ~replica ~key) 64;
  (* Every commit passed through the shared log. *)
  let commits = List.length (List.filter (fun (_, _, ok) -> ok) outcomes) in
  Alcotest.(check int) "log length = commits" commits (Kuafu.log_length sys);
  (* And the shared counter/log resources were actually exercised. *)
  Alcotest.(check bool) "counter used" true (Kuafu.counter_busy sys > 0.0);
  Alcotest.(check bool) "logs used" true
    (Array.for_all (fun b -> b > 0.0) (Kuafu.log_busy sys))

let test_tapir_record_mutex_contended () =
  let engine = Engine.create ~seed:6 () in
  let sys = Tapir.create engine base_cfg in
  let packed =
    Intf.Packed
      ( (module struct
          type t = Tapir.t

          let name = Tapir.name
          let threads = Tapir.threads
          let submit = Tapir.submit
          let obs = Tapir.obs
        end),
        sys )
  in
  ignore (drive engine packed ~clients:8 ~per_client:10 ~request:rmw_request);
  Array.iter
    (fun busy -> Alcotest.(check bool) "record mutex held" true (busy > 0.0))
    (Tapir.record_mutex_busy sys)

let test_pb_primary_decides_conflicts () =
  (* Two clients race on one key; the primary decides alone, so
     exactly one of each colliding pair aborts and the system never
     double-commits conflicting values: final value equals some
     client's last committed write. *)
  let cfg = { base_cfg with keys = 1; n_clients = 2 } in
  let engine = Engine.create ~seed:7 () in
  let sys = Pb.create engine cfg in
  let packed =
    Intf.Packed
      ( (module struct
          type t = Pb.t

          let name = Pb.name
          let threads = Pb.threads
          let submit = Pb.submit
          let obs = Pb.obs
        end),
        sys )
  in
  let outcomes =
    drive engine packed ~clients:2 ~per_client:20 ~request:(fun c i ->
        { Intf.reads = [| 0 |]; writes = [| (0, (c * 100) + i) |] })
  in
  let commits = List.filter (fun (_, _, ok) -> ok) outcomes in
  Alcotest.(check bool) "some commits" true (List.length commits > 0);
  Alcotest.(check bool) "some aborts under contention" true
    (List.exists (fun (_, _, ok) -> not ok) outcomes);
  converged "PB hot key" (fun ~replica ~key -> Pb.read_committed sys ~replica ~key) 1

let test_counters_accounting () =
  List.iter
    (fun kind ->
      let engine = Engine.create ~seed:8 () in
      let packed, _ = Systems.build kind engine base_cfg in
      let outcomes =
        drive engine packed ~clients:4 ~per_client:10 ~request:rmw_request
      in
      let counters = Intf.counters_of_packed packed in
      let commits = List.length (List.filter (fun (_, _, ok) -> ok) outcomes) in
      let aborts = List.length (List.filter (fun (_, _, ok) -> not ok) outcomes) in
      Alcotest.(check int) (Systems.name kind ^ " commit count") commits
        counters.Intf.committed;
      Alcotest.(check int) (Systems.name kind ^ " abort count") aborts
        counters.Intf.aborted)
    all_kinds

let test_table1_coordination_matrix () =
  Alcotest.(check (pair bool bool)) "Meerkat" (false, false)
    (Systems.coordination Systems.Meerkat);
  Alcotest.(check (pair bool bool)) "Meerkat-PB" (false, true)
    (Systems.coordination Systems.Meerkat_pb);
  Alcotest.(check (pair bool bool)) "TAPIR" (true, false)
    (Systems.coordination Systems.Tapir);
  Alcotest.(check (pair bool bool)) "KuaFu++" (true, true)
    (Systems.coordination Systems.Kuafupp)

let () =
  Alcotest.run "baselines"
    [
      ( "completion",
        [
          Alcotest.test_case "every system decides all txns" `Quick
            test_every_system_completes;
          Alcotest.test_case "disjoint txns commit" `Quick
            test_disjoint_txns_commit_everywhere;
          Alcotest.test_case "counter accounting" `Quick test_counters_accounting;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "TAPIR replicas converge" `Quick test_tapir_convergence;
          Alcotest.test_case "Meerkat-PB replicas converge" `Quick test_pb_convergence;
          Alcotest.test_case "KuaFu++ replicas converge" `Quick test_kuafu_convergence;
        ] );
      ( "structure",
        [
          Alcotest.test_case "TAPIR record mutex contended" `Quick
            test_tapir_record_mutex_contended;
          Alcotest.test_case "PB primary decides conflicts" `Quick
            test_pb_primary_decides_conflicts;
          Alcotest.test_case "Table 1 coordination matrix" `Quick
            test_table1_coordination_matrix;
        ] );
    ]
