(* The ZCP-conformance tooling, tested from both layers: the static
   lint against the fixture files in lint_fixtures/ (exact rule ids and
   locations), and the dynamic lock-discipline checker against real
   stores — including the pre-fix Vstore.find shape that motivated it. *)

module Config = Mk_check_lint.Lint_config
module Engine = Mk_check_lint.Lint_engine
module Findings = Mk_check_lint.Lint_findings
module Owner = Mk_check.Owner
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Vstore = Mk_storage.Vstore
module Occ = Mk_storage.Occ
module Trecord = Mk_storage.Trecord

let finding = Alcotest.(triple string int int)

let lint_many cfg paths =
  let r = Engine.run ~config:cfg ~paths in
  List.map (fun f -> (f.Findings.rule, f.Findings.line, f.Findings.col)) r.findings

let lint cfg path = lint_many cfg [ path ]

let lint_full cfg paths = (Engine.run ~config:cfg ~paths).Engine.findings
let chain_whats f = List.map (fun h -> h.Findings.what) f.Findings.chain
let fx name = Filename.concat "lint_fixtures" name

let check_anchor what expected f =
  Alcotest.(check finding)
    what expected
    (f.Findings.rule, f.Findings.line, f.Findings.col)

(* --- layer 1: the static rules, one fixture pair per rule --- *)

let test_z1_violations () =
  Alcotest.(check (list finding))
    "coordination + global state flagged"
    [ ("Z1", 4, 18); ("Z1", 5, 11); ("Z1", 6, 19) ]
    (lint Config.default (fx "z1_bad.ml"))

let test_z1_clean () =
  Alcotest.(check (list finding)) "per-call state passes" []
    (lint Config.default (fx "z1_ok.ml"))

let live_fx_cfg =
  { Config.default with Config.coordination_allow = [ fx "live_mailbox_ok.ml" ] }

let test_z1_live_fastpath_flagged () =
  (* Coordination on the live coordinator fast path is flagged even
     though the mailbox internals next door are allowlisted. *)
  Alcotest.(check (list finding))
    "atomic/lock on the protocol fast path flagged"
    [ ("Z1", 4, 14); ("Z1", 7, 2); ("Z1", 9, 2); ("Z1", 10, 24) ]
    (lint live_fx_cfg (fx "live_fastpath_bad.ml"))

let test_z1_live_mailbox_allowlisted () =
  Alcotest.(check (list finding)) "file-scoped allow shields the mailbox" []
    (lint live_fx_cfg (fx "live_mailbox_ok.ml"))

let node_fx_cfg =
  { Config.default with Config.coordination_allow = [ fx "node_shim_ok.ml" ] }

let test_z1_node_core_flagged () =
  (* Coordination in the cluster node's protocol-driving core is
     flagged even though the socket shim next door is allowlisted. *)
  Alcotest.(check (list finding))
    "atomic/thread in the node core flagged"
    [ ("Z1", 5, 16); ("Z1", 8, 10); ("Z1", 9, 2) ]
    (lint node_fx_cfg (fx "node_core_bad.ml"))

let test_z1_node_shim_allowlisted () =
  Alcotest.(check (list finding)) "file-scoped allow shields the shim" []
    (lint node_fx_cfg (fx "node_shim_ok.ml"))

let test_z2_violations () =
  Alcotest.(check (list finding))
    "polymorphic =/hash on ts/tid flagged"
    [ ("Z2", 3, 16); ("Z2", 4, 19) ]
    (lint Config.default (fx "z2_bad.ml"))

let test_z2_clean () =
  (* Includes [Timestamp.compare x y = 0]: the comparator's int result
     is not tainted. *)
  Alcotest.(check (list finding)) "dedicated comparators pass" []
    (lint Config.default (fx "z2_ok.ml"))

let z3_cfg =
  {
    Config.default with
    Config.coordination_allow = [ "lint_fixtures" ];
    shared_modules =
      [ fx "z3_bad.ml"; fx "z3_ok.ml"; fx "vstore_prefix_race.ml" ];
  }

let test_z3_violations () =
  Alcotest.(check (list finding))
    "unguarded Hashtbl op flagged"
    [ ("Z3", 3, 17) ]
    (lint z3_cfg (fx "z3_bad.ml"))

let test_z3_clean () =
  Alcotest.(check (list finding)) "guarded ops pass" [] (lint z3_cfg (fx "z3_ok.ml"))

let test_z3_catches_prefix_vstore_race () =
  (* Regression pin: the exact pre-fix shape of Vstore.find (table
     read, no shard_lock) is a Z3 finding. *)
  Alcotest.(check (list finding))
    "pre-fix Vstore.find shape flagged"
    [ ("Z3", 13, 2) ]
    (lint z3_cfg (fx "vstore_prefix_race.ml"))

let z4_cfg = { Config.default with Config.mli_required_under = [ "lint_fixtures" ] }

let test_z4_violation () =
  Alcotest.(check (list finding))
    "missing .mli flagged"
    [ ("Z4", 1, 0) ]
    (lint z4_cfg (fx "z4_bad.ml"))

let test_z4_clean () =
  Alcotest.(check (list finding)) ".mli present passes" []
    (lint z4_cfg (fx "z4_ok.ml"))

(* --- the interprocedural rules (Z5-Z8), one fixture pair per rule,
   each bad fixture pinned down to exact locations and at least one
   call-chain witness --- *)

let z5_cfg =
  {
    Config.default with
    Config.layering = [ (fx "z5_bad.ml", [ "Unix" ]); (fx "z5_ok.ml", [ "Unix" ]) ];
  }

let test_z5_violation () =
  (* z5_bad.ml itself never mentions Unix: the walk must cross the
     file edge into the sibling z5_dep.ml. *)
  match lint_full z5_cfg [ fx "z5_bad.ml"; fx "z5_dep.ml" ] with
  | [ f ] ->
      check_anchor "layering breach anchored at the sibling dep" ("Z5", 3, 15) f;
      Alcotest.(check (list string))
        "two-hop dependency witness"
        [
          "dependency on " ^ fx "z5_dep.ml"; "dependency on module Unix";
        ]
        (chain_whats f)
  | fs -> Alcotest.failf "expected 1 Z5 finding, got %d" (List.length fs)

let test_z5_clean () =
  Alcotest.(check (list finding))
    "injected clock passes" []
    (lint_many z5_cfg [ fx "z5_ok.ml"; fx "z5_dep.ml" ])

(* The lib/shard discipline in fixture form: the router/xcoord shapes
   are simultaneously a Z5 scope (no transport modules) and Z6 pure
   files, as in the shipped config. A router stamping with the wall
   clock trips both rules; the injected-~now shape lints clean. *)
let shard_fx_cfg =
  {
    Config.default with
    Config.layering =
      [
        (fx "shard_router_bad.ml", [ "Unix" ]);
        (fx "shard_router_ok.ml", [ "Unix" ]);
      ];
    pure_files = [ fx "shard_router_bad.ml"; fx "shard_router_ok.ml" ];
  }

let test_shard_fixture_flagged () =
  let findings = lint shard_fx_cfg (fx "shard_router_bad.ml") in
  Alcotest.(check bool) "wall-clock router breaches layering (Z5)" true
    (List.exists (fun (r, _, _) -> r = "Z5") findings);
  Alcotest.(check bool) "wall-clock router breaks purity (Z6)" true
    (List.exists (fun (r, _, _) -> r = "Z6") findings)

let test_shard_fixture_clean () =
  Alcotest.(check (list finding))
    "injected-~now placement and decision logic pass" []
    (lint shard_fx_cfg (fx "shard_router_ok.ml"))

let z6_cfg =
  { Config.default with Config.pure_files = [ fx "z6_bad.ml"; fx "z6_ok.ml" ] }

let test_z6_violations () =
  match lint_full z6_cfg [ fx "z6_bad.ml" ] with
  | [ f1; f2 ] ->
      check_anchor "helper flagged at its definition" ("Z6", 4, 4) f1;
      Alcotest.(check (list string))
        "direct witness"
        [ "now_us"; "impure use Unix.gettimeofday" ]
        (chain_whats f1);
      check_anchor "caller flagged transitively" ("Z6", 6, 4) f2;
      Alcotest.(check (list string))
        "chain threads through the helper"
        [ "deadline_passed"; "call to now_us"; "impure use Unix.gettimeofday" ]
        (chain_whats f2)
  | fs -> Alcotest.failf "expected 2 Z6 findings, got %d" (List.length fs)

let test_z6_clean () =
  Alcotest.(check (list finding))
    "~now injection passes" []
    (lint z6_cfg (fx "z6_ok.ml"))

let test_z6_open_alias () =
  (* Regression pin for the durable-codec shape: [module D = Sibling]
     (transitively, [module DD = D]) then [open DD]. The resolver must
     expand the opened alias to the sibling file instead of reporting
     an unknown — hence impure — module [DD]. *)
  let cfg = { Config.default with Config.pure_files = [ fx "z6_alias_ok.ml" ] } in
  Alcotest.(check (list finding))
    "opened alias of a pure sibling passes" []
    (lint_many cfg [ fx "z6_alias_ok.ml"; fx "z6_alias_dep.ml" ])

let z7_cfg =
  {
    Config.default with
    Config.total_entries =
      [ fx "z7_bad.ml" ^ ":decode"; fx "z7_ok.ml" ^ ":decode" ];
  }

let test_z7_violations () =
  match lint_full z7_cfg [ fx "z7_bad.ml" ] with
  | [ f1; f2; f3; f4 ] ->
      check_anchor "failwith in the helper" ("Z7", 3, 47) f1;
      Alcotest.(check (list string))
        "witness crosses into the helper"
        [ "decode"; "call to need" ]
        (chain_whats f1);
      check_anchor "bare string index" ("Z7", 7, 22) f2;
      check_anchor "int_of_string" ("Z7", 8, 8) f3;
      check_anchor "String.sub" ("Z7", 8, 23) f4;
      Alcotest.(check (list string)) "direct witness" [ "decode" ] (chain_whats f4)
  | fs -> Alcotest.failf "expected 4 Z7 findings, got %d" (List.length fs)

let test_z7_scoped_to_entry () =
  (* [boom] raises, but only [decode]'s closure is checked. *)
  Alcotest.(check (list finding))
    "unreachable raiser ignored" []
    (lint z7_cfg (fx "z7_ok.ml"))

let z7_node_cfg =
  {
    Config.default with
    Config.total_entries = [ fx "z7_node_shape_bad.ml" ^ ":deliver" ];
  }

let test_z7_catches_node_index_shape () =
  (* Regression pin: the PR 6 pre-fix Vc_accept_reply shape — a wire
     replica id indexing the quorum array unchecked — is a Z7 finding
     (both the read and the write). *)
  match lint_full z7_node_cfg [ fx "z7_node_shape_bad.ml" ] with
  | [ f1; f2 ] ->
      check_anchor "unchecked array read" ("Z7", 8, 9) f1;
      check_anchor "unchecked array write" ("Z7", 8, 42) f2;
      Alcotest.(check (list string)) "witness" [ "deliver" ] (chain_whats f1)
  | fs -> Alcotest.failf "expected 2 Z7 findings, got %d" (List.length fs)

let z7_replay_cfg =
  {
    Config.default with
    Config.total_entries =
      [
        fx "z7_replay_bad.ml" ^ ":read_records";
        fx "z7_replay_ok.ml" ^ ":read_records";
      ];
  }

let test_z7_replay_violations () =
  (* The WAL-reboot shape of the wire-totality rule: a replay reader
     that trusts its own log raises through the framed-length helper
     and through the bare slices in its loop. *)
  match lint_full z7_replay_cfg [ fx "z7_replay_bad.ml" ] with
  | [ f1; f2; f3 ] ->
      check_anchor "int_of_string in the length helper" ("Z7", 5, 21) f1;
      Alcotest.(check (list string))
        "witness crosses loop and helper"
        [ "read_records"; "call to go"; "call to header" ]
        (chain_whats f1);
      check_anchor "String.sub in the length helper" ("Z7", 5, 36) f2;
      check_anchor "bare payload slice in the loop" ("Z7", 12, 20) f3
  | fs -> Alcotest.failf "expected 3 Z7 findings, got %d" (List.length fs)

let test_z7_replay_total_shape () =
  (* The shipped shape: every slice behind a bounds check (per-site
     allow on the checked helper), garbage yields the longest valid
     prefix. *)
  Alcotest.(check (list finding))
    "total replay reader passes" []
    (lint z7_replay_cfg (fx "z7_replay_ok.ml"))

let z8_cfg =
  {
    Config.default with
    Config.coordination_allow = [ "lint_fixtures" ];
    nonblock_entries =
      [ fx "z8_bad.ml" ^ ":deliver"; fx "z8_ok.ml" ^ ":deliver" ];
  }

let test_z8_violation () =
  match lint_full z8_cfg [ fx "z8_bad.ml" ] with
  | [ f ] ->
      check_anchor "parked two calls down" ("Z8", 5, 2) f;
      Alcotest.(check (list string))
        "witness"
        [ "deliver"; "call to rendezvous" ]
        (chain_whats f)
  | fs -> Alcotest.failf "expected 1 Z8 finding, got %d" (List.length fs)

let test_z8_site_allow () =
  Alcotest.(check (list finding))
    "per-site [@mk_lint.allow] suppresses" []
    (lint z8_cfg (fx "z8_ok.ml"))

let z8_drain_cfg =
  {
    Config.default with
    Config.coordination_allow = [ "lint_fixtures" ];
    nonblock_entries =
      [
        fx "z8_drain_bad.ml" ^ ":server_loop";
        fx "z8_drain_ok.ml" ^ ":server_loop";
      ];
  }

let test_z8_drain_violation () =
  (* The batched-drain shape: a parking handler is reached through the
     drain combinator's per-message callback, two hops from the server
     loop entry. *)
  match lint_full z8_drain_cfg [ fx "z8_drain_bad.ml" ] with
  | [ f ] ->
      check_anchor "parked inside the drained handler" ("Z8", 7, 2) f;
      Alcotest.(check (list string))
        "witness crosses the drain"
        [ "server_loop"; "call to drain"; "call to handle" ]
        (chain_whats f)
  | fs -> Alcotest.failf "expected 1 Z8 finding, got %d" (List.length fs)

let test_z8_drain_fallback_allowed () =
  (* The shipped idiom: non-blocking handler, and the empty-drain
     fallback to the parking pop suppressed per-site. *)
  Alcotest.(check (list finding))
    "drain loop with annotated pop fallback passes" []
    (lint z8_drain_cfg (fx "z8_drain_ok.ml"))

(* --- report plumbing: --rules filtering and --json rendering --- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_rules_filter () =
  let r = Engine.run ~config:z7_cfg ~paths:[ fx "z7_bad.ml" ] in
  Alcotest.(check int)
    "other rules filtered out" 0
    (List.length (Engine.filter_rules [ "z5"; "z8" ] r).Engine.findings);
  Alcotest.(check int)
    "named rule kept, case-insensitively"
    (List.length r.Engine.findings)
    (List.length (Engine.filter_rules [ "z7" ] r).Engine.findings)

let test_json_render () =
  let run () = Engine.run ~config:z8_cfg ~paths:[ fx "z8_bad.ml" ] in
  let js = Engine.render_json (run ()) in
  Alcotest.(check bool) "rule id" true (contains ~needle:"\"rule\":\"Z8\"" js);
  Alcotest.(check bool)
    "chain witness serialized" true
    (contains ~needle:"\"chain\":[{\"what\":\"deliver\"" js);
  Alcotest.(check bool)
    "hop locations serialized" true
    (contains ~needle:"\"what\":\"call to rendezvous\"" js);
  Alcotest.(check string) "deterministic" js (Engine.render_json (run ()))

let test_deterministic () =
  let run () = Engine.render (Engine.run ~config:Config.default ~paths:[ fx "z1_bad.ml"; fx "z2_bad.ml" ]) in
  Alcotest.(check string) "same report twice" (run ()) (run ())

(* --- config parsing --- *)

let test_config_overrides () =
  let cfg =
    Config.of_string
      "# comment\n[z1]\nallow = [\"lib/x\", \"lib/y\"]\n[z3]\nshared = \"m.ml\"\n"
  in
  Alcotest.(check (list string)) "allow" [ "lib/x"; "lib/y" ] cfg.Config.coordination_allow;
  Alcotest.(check (list string)) "shared" [ "m.ml" ] cfg.Config.shared_modules;
  (* untouched keys keep their defaults *)
  Alcotest.(check (list string))
    "guards" Config.default.Config.lock_guards cfg.Config.lock_guards

let test_config_unknown_key_rejected () =
  match Config.of_string "[z1]\nallwo = [\"lib\"]\n" with
  | _ -> Alcotest.fail "typo'd key accepted"
  | exception Config.Parse_error _ -> ()

let test_config_v2_sections () =
  (* The interprocedural sections, including a multi-line list with
     trailing comma and an inline comment — the shapes the shipped
     mk_lint.toml actually uses. *)
  let cfg =
    Config.of_string
      "[z5]\n\
       rules = [\n\
      \  \"lib/meerkat : lib/live Unix\", # transport ban\n\
      \  \"lib/wire : Unix\",\n\
       ]\n\
       allow = [\"lib/meerkat/sim_system.ml\"]\n\
       [z6]\n\
       pure = [\"lib/meerkat/protocol.ml\"]\n\
       [z7]\n\
       entries = [\"lib/wire/wire.ml:unframe\"]\n\
       raising = [\"failwith\"]\n\
       [z8]\n\
       entries = [\"lib/node/node.ml:deliver\"]\n\
       blocking = [\"Mutex.lock\"]\n\
       allow = [\"lib/node/shim.ml\"]\n"
  in
  Alcotest.(check (list (pair string (list string))))
    "layering rules parsed"
    [ ("lib/meerkat", [ "lib/live"; "Unix" ]); ("lib/wire", [ "Unix" ]) ]
    cfg.Config.layering;
  Alcotest.(check (list string))
    "z5 allow" [ "lib/meerkat/sim_system.ml" ] cfg.Config.layering_allow;
  Alcotest.(check (list string))
    "z6 pure" [ "lib/meerkat/protocol.ml" ] cfg.Config.pure_files;
  Alcotest.(check (list string))
    "z7 entries" [ "lib/wire/wire.ml:unframe" ] cfg.Config.total_entries;
  Alcotest.(check (list string)) "z7 raising override" [ "failwith" ]
    cfg.Config.raising_prims;
  Alcotest.(check (list string))
    "z8 entries" [ "lib/node/node.ml:deliver" ] cfg.Config.nonblock_entries;
  Alcotest.(check (list string)) "z8 blocking override" [ "Mutex.lock" ]
    cfg.Config.blocking_prims;
  Alcotest.(check (list string))
    "z8 allow" [ "lib/node/shim.ml" ] cfg.Config.nonblock_allow;
  (* untouched prim lists keep their curated defaults *)
  Alcotest.(check (list string))
    "z6 impure defaults survive" Config.default.Config.impure_prims
    cfg.Config.impure_prims

let test_config_unterminated_list_rejected () =
  match Config.of_string "[z5]\nrules = [\n  \"a : b\",\n" with
  | _ -> Alcotest.fail "unterminated list accepted"
  | exception Config.Parse_error _ -> ()

let test_config_bad_z5_rule_rejected () =
  match Config.of_string "[z5]\nrules = [\"no colon here\"]\n" with
  | _ -> Alcotest.fail "z5 rule without a scope accepted"
  | exception Config.Parse_error _ -> ()

(* Tests run from _build/default/test/, so every path-bearing field of
   the shipped config — including the file part of entry-point specs
   and the path-shaped halves of layering rules — is rebased with ../
   before linting the real tree. *)
let rebase_cfg cfg =
  let rebase = List.map (fun p -> "../" ^ p) in
  {
    cfg with
    Config.coordination_allow = rebase cfg.Config.coordination_allow;
    shared_modules = rebase cfg.Config.shared_modules;
    mli_required_under = rebase cfg.Config.mli_required_under;
    layering =
      List.map
        (fun (scope, forbidden) ->
          ( "../" ^ scope,
            List.map
              (fun f -> if String.contains f '/' then "../" ^ f else f)
              forbidden ))
        cfg.Config.layering;
    layering_allow = rebase cfg.Config.layering_allow;
    pure_files = rebase cfg.Config.pure_files;
    pure_allow = rebase cfg.Config.pure_allow;
    total_entries = rebase cfg.Config.total_entries;
    total_allow = rebase cfg.Config.total_allow;
    nonblock_entries = rebase cfg.Config.nonblock_entries;
    nonblock_allow = rebase cfg.Config.nonblock_allow;
  }

let test_real_config_scopes_live () =
  (* The shipped mk_lint.toml allowlists exactly the three coordination
     files of lib/live, never the directory, so runtime.ml (the
     protocol fast path) stays covered by Z1 — as does the extracted
     lib/meerkat/detector.ml, which needs no entry at all. Paths are
     rebased with ../ because tests run from _build/default/test/. *)
  let cfg = Config.load "../mk_lint.toml" in
  Alcotest.(check bool) "file-scoped, not directory-scoped" true
    (List.mem "lib/live/mailbox.ml" cfg.Config.coordination_allow
    && List.mem "lib/live/spawn.ml" cfg.Config.coordination_allow
    && List.mem "lib/live/link.ml" cfg.Config.coordination_allow
    && (not (List.mem "lib/live" cfg.Config.coordination_allow))
    && not
         (List.exists
            (fun p -> p = "lib/live/runtime.ml" || p = "lib/meerkat")
            cfg.Config.coordination_allow));
  let cfg = rebase_cfg cfg in
  Alcotest.(check (list finding)) "lib/live lints clean" []
    (lint cfg "../lib/live");
  (* batch.ml rides along so the detector's sibling [Batch] reference
     resolves in this scoped run (in the full-tree CI run it always
     does); neither file needs an allowlist entry. *)
  Alcotest.(check (list finding)) "detector.ml lints clean" []
    (lint_many cfg [ "../lib/meerkat/detector.ml"; "../lib/meerkat/batch.ml" ]);
  (* Dropping the allow entries proves they are load-bearing: the
     mailbox internals and the link delay wheel become Z1 findings —
     while runtime.ml and detector.ml keep linting clean, showing they
     never relied on an allowlist in the first place. *)
  let bare = { cfg with Config.coordination_allow = [] } in
  Alcotest.(check bool) "mailbox flagged without its entry" true
    (List.exists
       (fun (rule, _, _) -> rule = "Z1")
       (lint bare "../lib/live/mailbox.ml"));
  Alcotest.(check bool) "link flagged without its entry" true
    (List.exists
       (fun (rule, _, _) -> rule = "Z1")
       (lint bare "../lib/live/link.ml"));
  Alcotest.(check (list finding)) "runtime.ml clean even with empty allowlist" []
    (lint bare "../lib/live/runtime.ml");
  Alcotest.(check (list finding)) "detector.ml clean even with empty allowlist" []
    (lint_many bare [ "../lib/meerkat/detector.ml"; "../lib/meerkat/batch.ml" ])

let test_real_config_scopes_node () =
  (* The cluster backend gets exactly one allowlist entry: the socket
     shim (the UDP event-loop systhread). node.ml and client_driver.ml
     drive the protocol and must stay coordination-free, as must the
     pure wire codecs. *)
  let cfg = Config.load "../mk_lint.toml" in
  Alcotest.(check bool) "shim file-scoped, not directory-scoped" true
    (List.mem "lib/node/shim.ml" cfg.Config.coordination_allow
    && (not (List.mem "lib/node" cfg.Config.coordination_allow))
    && not
         (List.exists
            (fun p -> p = "lib/node/node.ml" || p = "lib/node/client_driver.ml")
            cfg.Config.coordination_allow));
  let cfg = rebase_cfg cfg in
  Alcotest.(check (list finding)) "lib/node lints clean" []
    (lint cfg "../lib/node");
  Alcotest.(check (list finding)) "lib/wire lints clean" []
    (lint cfg "../lib/wire");
  let bare = { cfg with Config.coordination_allow = [] } in
  Alcotest.(check bool) "shim flagged without its entry" true
    (List.exists
       (fun (rule, _, _) -> rule = "Z1")
       (lint bare "../lib/node/shim.ml"));
  Alcotest.(check (list finding)) "node.ml clean even with empty allowlist" []
    (lint bare "../lib/node/node.ml");
  Alcotest.(check (list finding))
    "client_driver.ml clean even with empty allowlist" []
    (lint bare "../lib/node/client_driver.ml")

let test_real_config_interprocedural () =
  (* The shipped config wires the interprocedural rules to the real
     boundaries: the wire decoders and node frame handlers are Z7
     entries, the hot loops are Z8 entries, the protocol core is the
     Z6 pure boundary and the Z5 scope. With every path rebased, the
     shipped tree must lint clean under all of them. *)
  let cfg = Config.load "../mk_lint.toml" in
  Alcotest.(check bool) "v2 sections populated" true
    (List.mem_assoc "lib/meerkat" cfg.Config.layering
    && List.mem_assoc "lib/wire" cfg.Config.layering
    && List.mem_assoc "lib/durable" cfg.Config.layering
    && List.mem_assoc "lib/shard" cfg.Config.layering
    && List.mem "lib/meerkat/protocol.ml" cfg.Config.pure_files
    && List.mem "lib/shard/router.ml" cfg.Config.pure_files
    && List.mem "lib/shard/xcoord.ml" cfg.Config.pure_files
    && List.mem "lib/shard/history.ml" cfg.Config.pure_files
    && List.mem "lib/node/shard_driver.ml:deliver" cfg.Config.total_entries
    (* The absorbed sim-only sketch must not keep a stale escape
       hatch: lib/shard has no layering allow at all. *)
    && (not (List.mem "lib/meerkat/sharded.ml" cfg.Config.layering_allow))
    && List.mem "lib/durable/walcodec.ml" cfg.Config.pure_files
    && List.mem "lib/wire/wire.ml:unframe" cfg.Config.total_entries
    && List.mem "lib/node/client_driver.ml:deliver" cfg.Config.total_entries
    && List.mem "lib/durable/walcodec.ml:read_records" cfg.Config.total_entries
    && List.mem "lib/durable/recover.ml:parse" cfg.Config.total_entries
    && List.mem "lib/node/node.ml:deliver" cfg.Config.nonblock_entries
    && List.mem "lib/live/runtime.ml:server_loop" cfg.Config.nonblock_entries
    (* The batched message plane's drain/flush paths are hot-path
       entries too: the server domain's per-message handler and the
       poll-mode drivers' frame handlers. *)
    && List.mem "lib/live/runtime.ml:server_handle" cfg.Config.nonblock_entries
    && List.mem "lib/node/client_driver.ml:deliver" cfg.Config.nonblock_entries
    && List.mem "lib/node/shard_driver.ml:deliver" cfg.Config.nonblock_entries);
  let cfg = rebase_cfg cfg in
  Alcotest.(check (list finding))
    "protocol core clean under Z5/Z6" []
    (lint cfg "../lib/meerkat");
  Alcotest.(check (list finding))
    "wire decoders clean under Z7" []
    (lint cfg "../lib/wire");
  Alcotest.(check (list finding))
    "node handlers clean under Z7/Z8" []
    (lint cfg "../lib/node");
  (* The durable layer under all four: Z5 keeps it below every
     backend, Z6 covers its codec halves, Z7 its replay readers. The
     wire library rides along because the codecs resolve into it. *)
  Alcotest.(check (list finding))
    "durable layer clean under Z5/Z6/Z7" []
    (lint_many cfg [ "../lib/durable"; "../lib/wire" ]);
  (* The sharding layer: Z5 keeps it below every backend and the
     protocol library, Z6 keeps router/xcoord/history pure. Its
     storage/clock/util dependencies ride along so the call graph
     resolves. *)
  Alcotest.(check (list finding))
    "shard layer clean under Z5/Z6" []
    (lint_many cfg
       [ "../lib/shard"; "../lib/storage"; "../lib/clock"; "../lib/util" ])

(* --- layer 2: the dynamic checker --- *)

let ts time = Timestamp.make ~time ~client_id:7

let with_checker f =
  Owner.enable ();
  Fun.protect ~finally:Owner.disable f

let expect_violation what f =
  match f () with
  | _ -> Alcotest.failf "%s: violation not caught" what
  | exception Owner.Violation _ -> ()

let test_owner_disabled_is_noop () =
  Owner.disable ();
  let store = Vstore.create ~shards:4 () in
  Vstore.load store ~key:1 ~value:10;
  (* Both deliberately broken paths run silently when the checker is
     off — zero-cost mode changes no behavior. *)
  (match Vstore.For_testing.unguarded_find store 1 with
  | Some _ -> ()
  | None -> Alcotest.fail "entry missing");
  Vstore.For_testing.unguarded_bump_rts (Vstore.find_exn store 1) (ts 1.0)

let test_owner_catches_prefix_find_race () =
  with_checker (fun () ->
      let store = Vstore.create ~shards:4 () in
      Vstore.load store ~key:1 ~value:10;
      (* The fixed paths pass... *)
      (match Vstore.find store 1 with
      | Some e -> ignore (Vstore.read_versioned e)
      | None -> Alcotest.fail "entry missing");
      (* ...the pre-fix shape of Vstore.find is caught. *)
      expect_violation "unguarded find" (fun () ->
          Vstore.For_testing.unguarded_find store 1))

let test_owner_catches_unguarded_mutation () =
  with_checker (fun () ->
      let store = Vstore.create ~shards:4 () in
      Vstore.load store ~key:1 ~value:10;
      let e = Vstore.find_exn store 1 in
      (* Guarded mutation passes... *)
      Vstore.with_entry e (fun e -> Vstore.set_rts e (ts 1.0));
      (* ...the same mutation outside with_entry is caught. *)
      expect_violation "unguarded mutation" (fun () ->
          Vstore.For_testing.unguarded_bump_rts e (ts 2.0)))

let test_owner_passes_occ_roundtrip () =
  with_checker (fun () ->
      let store = Vstore.create ~shards:4 () in
      for key = 0 to 7 do
        Vstore.load store ~key ~value:0
      done;
      let e = Vstore.find_exn store 3 in
      let _, wts = Vstore.read_versioned e in
      let txn =
        Txn.make
          ~tid:(Timestamp.Tid.make ~seq:1 ~client_id:7)
          ~read_set:[ { key = 3; wts } ]
          ~write_set:[ { key = 3; value = 99 } ]
      in
      (match Occ.validate store txn ~ts:(ts 1.0) with
      | `Ok -> Occ.finish store txn ~ts:(ts 1.0) ~commit:true
      | `Abort -> Alcotest.fail "validation aborted");
      Alcotest.(check (pair int int)) "no pending residue" (0, 0)
        (Vstore.pending_counts store))

let test_owner_partition_ownership () =
  with_checker (fun () ->
      let tr = Trecord.create ~cores:2 in
      let tid = Timestamp.Tid.make ~seq:1 ~client_id:0 in
      (* Own partition under an actor scope: fine. *)
      Owner.with_core 0 (fun () -> ignore (Trecord.find tr ~core:0 tid));
      (* Maintenance outside any actor scope: fine. *)
      ignore (Trecord.find tr ~core:1 tid);
      (* A foreign partition inside an actor scope: caught. *)
      expect_violation "foreign partition" (fun () ->
          Owner.with_core 0 (fun () -> Trecord.find tr ~core:1 tid)))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "Z1 violations" `Quick test_z1_violations;
          Alcotest.test_case "Z1 clean" `Quick test_z1_clean;
          Alcotest.test_case "Z1 live fast path flagged" `Quick
            test_z1_live_fastpath_flagged;
          Alcotest.test_case "Z1 live mailbox allowlisted" `Quick
            test_z1_live_mailbox_allowlisted;
          Alcotest.test_case "Z1 node core flagged" `Quick
            test_z1_node_core_flagged;
          Alcotest.test_case "Z1 node shim allowlisted" `Quick
            test_z1_node_shim_allowlisted;
          Alcotest.test_case "Z2 violations" `Quick test_z2_violations;
          Alcotest.test_case "Z2 clean" `Quick test_z2_clean;
          Alcotest.test_case "Z3 violations" `Quick test_z3_violations;
          Alcotest.test_case "Z3 clean" `Quick test_z3_clean;
          Alcotest.test_case "Z3 catches pre-fix Vstore.find" `Quick
            test_z3_catches_prefix_vstore_race;
          Alcotest.test_case "Z4 violation" `Quick test_z4_violation;
          Alcotest.test_case "Z4 clean" `Quick test_z4_clean;
          Alcotest.test_case "Z5 violation" `Quick test_z5_violation;
          Alcotest.test_case "Z5 clean" `Quick test_z5_clean;
          Alcotest.test_case "shard fixture flagged (Z5+Z6)" `Quick
            test_shard_fixture_flagged;
          Alcotest.test_case "shard fixture clean" `Quick
            test_shard_fixture_clean;
          Alcotest.test_case "Z6 violations" `Quick test_z6_violations;
          Alcotest.test_case "Z6 clean" `Quick test_z6_clean;
          Alcotest.test_case "Z6 opened alias resolves" `Quick test_z6_open_alias;
          Alcotest.test_case "Z7 violations" `Quick test_z7_violations;
          Alcotest.test_case "Z7 scoped to entry" `Quick test_z7_scoped_to_entry;
          Alcotest.test_case "Z7 catches node index shape" `Quick
            test_z7_catches_node_index_shape;
          Alcotest.test_case "Z7 replay violations" `Quick
            test_z7_replay_violations;
          Alcotest.test_case "Z7 replay total shape" `Quick
            test_z7_replay_total_shape;
          Alcotest.test_case "Z8 violation" `Quick test_z8_violation;
          Alcotest.test_case "Z8 per-site allow" `Quick test_z8_site_allow;
          Alcotest.test_case "Z8 drain violation" `Quick test_z8_drain_violation;
          Alcotest.test_case "Z8 drain fallback allow" `Quick
            test_z8_drain_fallback_allowed;
          Alcotest.test_case "rules filter" `Quick test_rules_filter;
          Alcotest.test_case "json render" `Quick test_json_render;
          Alcotest.test_case "deterministic output" `Quick test_deterministic;
        ] );
      ( "config",
        [
          Alcotest.test_case "overrides" `Quick test_config_overrides;
          Alcotest.test_case "unknown key rejected" `Quick
            test_config_unknown_key_rejected;
          Alcotest.test_case "v2 sections" `Quick test_config_v2_sections;
          Alcotest.test_case "unterminated list rejected" `Quick
            test_config_unterminated_list_rejected;
          Alcotest.test_case "bad z5 rule rejected" `Quick
            test_config_bad_z5_rule_rejected;
          Alcotest.test_case "shipped config scopes lib/live" `Quick
            test_real_config_scopes_live;
          Alcotest.test_case "shipped config scopes lib/node" `Quick
            test_real_config_scopes_node;
          Alcotest.test_case "shipped config interprocedural rules" `Quick
            test_real_config_interprocedural;
        ] );
      ( "owner",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_owner_disabled_is_noop;
          Alcotest.test_case "catches pre-fix find race" `Quick
            test_owner_catches_prefix_find_race;
          Alcotest.test_case "catches unguarded mutation" `Quick
            test_owner_catches_unguarded_mutation;
          Alcotest.test_case "occ roundtrip passes" `Quick
            test_owner_passes_occ_roundtrip;
          Alcotest.test_case "trecord partition ownership" `Quick
            test_owner_partition_ownership;
        ] );
    ]
