(* The ZCP-conformance tooling, tested from both layers: the static
   lint against the fixture files in lint_fixtures/ (exact rule ids and
   locations), and the dynamic lock-discipline checker against real
   stores — including the pre-fix Vstore.find shape that motivated it. *)

module Config = Mk_check_lint.Lint_config
module Engine = Mk_check_lint.Lint_engine
module Findings = Mk_check_lint.Lint_findings
module Owner = Mk_check.Owner
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Vstore = Mk_storage.Vstore
module Occ = Mk_storage.Occ
module Trecord = Mk_storage.Trecord

let finding = Alcotest.(triple string int int)

let lint cfg path =
  let r = Engine.run ~config:cfg ~paths:[ path ] in
  List.map (fun f -> (f.Findings.rule, f.Findings.line, f.Findings.col)) r.findings

let fx name = Filename.concat "lint_fixtures" name

(* --- layer 1: the static rules, one fixture pair per rule --- *)

let test_z1_violations () =
  Alcotest.(check (list finding))
    "coordination + global state flagged"
    [ ("Z1", 4, 18); ("Z1", 5, 11); ("Z1", 6, 19) ]
    (lint Config.default (fx "z1_bad.ml"))

let test_z1_clean () =
  Alcotest.(check (list finding)) "per-call state passes" []
    (lint Config.default (fx "z1_ok.ml"))

let live_fx_cfg =
  { Config.default with Config.coordination_allow = [ fx "live_mailbox_ok.ml" ] }

let test_z1_live_fastpath_flagged () =
  (* Coordination on the live coordinator fast path is flagged even
     though the mailbox internals next door are allowlisted. *)
  Alcotest.(check (list finding))
    "atomic/lock on the protocol fast path flagged"
    [ ("Z1", 4, 14); ("Z1", 7, 2); ("Z1", 9, 2); ("Z1", 10, 24) ]
    (lint live_fx_cfg (fx "live_fastpath_bad.ml"))

let test_z1_live_mailbox_allowlisted () =
  Alcotest.(check (list finding)) "file-scoped allow shields the mailbox" []
    (lint live_fx_cfg (fx "live_mailbox_ok.ml"))

let node_fx_cfg =
  { Config.default with Config.coordination_allow = [ fx "node_shim_ok.ml" ] }

let test_z1_node_core_flagged () =
  (* Coordination in the cluster node's protocol-driving core is
     flagged even though the socket shim next door is allowlisted. *)
  Alcotest.(check (list finding))
    "atomic/thread in the node core flagged"
    [ ("Z1", 5, 16); ("Z1", 8, 10); ("Z1", 9, 2) ]
    (lint node_fx_cfg (fx "node_core_bad.ml"))

let test_z1_node_shim_allowlisted () =
  Alcotest.(check (list finding)) "file-scoped allow shields the shim" []
    (lint node_fx_cfg (fx "node_shim_ok.ml"))

let test_z2_violations () =
  Alcotest.(check (list finding))
    "polymorphic =/hash on ts/tid flagged"
    [ ("Z2", 3, 16); ("Z2", 4, 19) ]
    (lint Config.default (fx "z2_bad.ml"))

let test_z2_clean () =
  (* Includes [Timestamp.compare x y = 0]: the comparator's int result
     is not tainted. *)
  Alcotest.(check (list finding)) "dedicated comparators pass" []
    (lint Config.default (fx "z2_ok.ml"))

let z3_cfg =
  {
    Config.default with
    Config.coordination_allow = [ "lint_fixtures" ];
    shared_modules =
      [ fx "z3_bad.ml"; fx "z3_ok.ml"; fx "vstore_prefix_race.ml" ];
  }

let test_z3_violations () =
  Alcotest.(check (list finding))
    "unguarded Hashtbl op flagged"
    [ ("Z3", 3, 17) ]
    (lint z3_cfg (fx "z3_bad.ml"))

let test_z3_clean () =
  Alcotest.(check (list finding)) "guarded ops pass" [] (lint z3_cfg (fx "z3_ok.ml"))

let test_z3_catches_prefix_vstore_race () =
  (* Regression pin: the exact pre-fix shape of Vstore.find (table
     read, no shard_lock) is a Z3 finding. *)
  Alcotest.(check (list finding))
    "pre-fix Vstore.find shape flagged"
    [ ("Z3", 13, 2) ]
    (lint z3_cfg (fx "vstore_prefix_race.ml"))

let z4_cfg = { Config.default with Config.mli_required_under = [ "lint_fixtures" ] }

let test_z4_violation () =
  Alcotest.(check (list finding))
    "missing .mli flagged"
    [ ("Z4", 1, 0) ]
    (lint z4_cfg (fx "z4_bad.ml"))

let test_z4_clean () =
  Alcotest.(check (list finding)) ".mli present passes" []
    (lint z4_cfg (fx "z4_ok.ml"))

let test_deterministic () =
  let run () = Engine.render (Engine.run ~config:Config.default ~paths:[ fx "z1_bad.ml"; fx "z2_bad.ml" ]) in
  Alcotest.(check string) "same report twice" (run ()) (run ())

(* --- config parsing --- *)

let test_config_overrides () =
  let cfg =
    Config.of_string
      "# comment\n[z1]\nallow = [\"lib/x\", \"lib/y\"]\n[z3]\nshared = \"m.ml\"\n"
  in
  Alcotest.(check (list string)) "allow" [ "lib/x"; "lib/y" ] cfg.Config.coordination_allow;
  Alcotest.(check (list string)) "shared" [ "m.ml" ] cfg.Config.shared_modules;
  (* untouched keys keep their defaults *)
  Alcotest.(check (list string))
    "guards" Config.default.Config.lock_guards cfg.Config.lock_guards

let test_config_unknown_key_rejected () =
  match Config.of_string "[z1]\nallwo = [\"lib\"]\n" with
  | _ -> Alcotest.fail "typo'd key accepted"
  | exception Config.Parse_error _ -> ()

let test_real_config_scopes_live () =
  (* The shipped mk_lint.toml allowlists exactly the three coordination
     files of lib/live, never the directory, so runtime.ml (the
     protocol fast path) stays covered by Z1 — as does the extracted
     lib/meerkat/detector.ml, which needs no entry at all. Paths are
     rebased with ../ because tests run from _build/default/test/. *)
  let cfg = Config.load "../mk_lint.toml" in
  Alcotest.(check bool) "file-scoped, not directory-scoped" true
    (List.mem "lib/live/mailbox.ml" cfg.Config.coordination_allow
    && List.mem "lib/live/spawn.ml" cfg.Config.coordination_allow
    && List.mem "lib/live/link.ml" cfg.Config.coordination_allow
    && (not (List.mem "lib/live" cfg.Config.coordination_allow))
    && not
         (List.exists
            (fun p -> p = "lib/live/runtime.ml" || p = "lib/meerkat")
            cfg.Config.coordination_allow));
  let rebase = List.map (fun p -> "../" ^ p) in
  let cfg =
    {
      cfg with
      Config.coordination_allow = rebase cfg.Config.coordination_allow;
      shared_modules = rebase cfg.Config.shared_modules;
      mli_required_under = rebase cfg.Config.mli_required_under;
    }
  in
  Alcotest.(check (list finding)) "lib/live lints clean" []
    (lint cfg "../lib/live");
  Alcotest.(check (list finding)) "detector.ml lints clean" []
    (lint cfg "../lib/meerkat/detector.ml");
  (* Dropping the allow entries proves they are load-bearing: the
     mailbox internals and the link delay wheel become Z1 findings —
     while runtime.ml and detector.ml keep linting clean, showing they
     never relied on an allowlist in the first place. *)
  let bare = { cfg with Config.coordination_allow = [] } in
  Alcotest.(check bool) "mailbox flagged without its entry" true
    (List.exists
       (fun (rule, _, _) -> rule = "Z1")
       (lint bare "../lib/live/mailbox.ml"));
  Alcotest.(check bool) "link flagged without its entry" true
    (List.exists
       (fun (rule, _, _) -> rule = "Z1")
       (lint bare "../lib/live/link.ml"));
  Alcotest.(check (list finding)) "runtime.ml clean even with empty allowlist" []
    (lint bare "../lib/live/runtime.ml");
  Alcotest.(check (list finding)) "detector.ml clean even with empty allowlist" []
    (lint bare "../lib/meerkat/detector.ml")

let test_real_config_scopes_node () =
  (* The cluster backend gets exactly one allowlist entry: the socket
     shim (the UDP event-loop systhread). node.ml and client_driver.ml
     drive the protocol and must stay coordination-free, as must the
     pure wire codecs. *)
  let cfg = Config.load "../mk_lint.toml" in
  Alcotest.(check bool) "shim file-scoped, not directory-scoped" true
    (List.mem "lib/node/shim.ml" cfg.Config.coordination_allow
    && (not (List.mem "lib/node" cfg.Config.coordination_allow))
    && not
         (List.exists
            (fun p -> p = "lib/node/node.ml" || p = "lib/node/client_driver.ml")
            cfg.Config.coordination_allow));
  let rebase = List.map (fun p -> "../" ^ p) in
  let cfg =
    {
      cfg with
      Config.coordination_allow = rebase cfg.Config.coordination_allow;
      shared_modules = rebase cfg.Config.shared_modules;
      mli_required_under = rebase cfg.Config.mli_required_under;
    }
  in
  Alcotest.(check (list finding)) "lib/node lints clean" []
    (lint cfg "../lib/node");
  Alcotest.(check (list finding)) "lib/wire lints clean" []
    (lint cfg "../lib/wire");
  let bare = { cfg with Config.coordination_allow = [] } in
  Alcotest.(check bool) "shim flagged without its entry" true
    (List.exists
       (fun (rule, _, _) -> rule = "Z1")
       (lint bare "../lib/node/shim.ml"));
  Alcotest.(check (list finding)) "node.ml clean even with empty allowlist" []
    (lint bare "../lib/node/node.ml");
  Alcotest.(check (list finding))
    "client_driver.ml clean even with empty allowlist" []
    (lint bare "../lib/node/client_driver.ml")

(* --- layer 2: the dynamic checker --- *)

let ts time = Timestamp.make ~time ~client_id:7

let with_checker f =
  Owner.enable ();
  Fun.protect ~finally:Owner.disable f

let expect_violation what f =
  match f () with
  | _ -> Alcotest.failf "%s: violation not caught" what
  | exception Owner.Violation _ -> ()

let test_owner_disabled_is_noop () =
  Owner.disable ();
  let store = Vstore.create ~shards:4 () in
  Vstore.load store ~key:1 ~value:10;
  (* Both deliberately broken paths run silently when the checker is
     off — zero-cost mode changes no behavior. *)
  (match Vstore.For_testing.unguarded_find store 1 with
  | Some _ -> ()
  | None -> Alcotest.fail "entry missing");
  Vstore.For_testing.unguarded_bump_rts (Vstore.find_exn store 1) (ts 1.0)

let test_owner_catches_prefix_find_race () =
  with_checker (fun () ->
      let store = Vstore.create ~shards:4 () in
      Vstore.load store ~key:1 ~value:10;
      (* The fixed paths pass... *)
      (match Vstore.find store 1 with
      | Some e -> ignore (Vstore.read_versioned e)
      | None -> Alcotest.fail "entry missing");
      (* ...the pre-fix shape of Vstore.find is caught. *)
      expect_violation "unguarded find" (fun () ->
          Vstore.For_testing.unguarded_find store 1))

let test_owner_catches_unguarded_mutation () =
  with_checker (fun () ->
      let store = Vstore.create ~shards:4 () in
      Vstore.load store ~key:1 ~value:10;
      let e = Vstore.find_exn store 1 in
      (* Guarded mutation passes... *)
      Vstore.with_entry e (fun e -> Vstore.set_rts e (ts 1.0));
      (* ...the same mutation outside with_entry is caught. *)
      expect_violation "unguarded mutation" (fun () ->
          Vstore.For_testing.unguarded_bump_rts e (ts 2.0)))

let test_owner_passes_occ_roundtrip () =
  with_checker (fun () ->
      let store = Vstore.create ~shards:4 () in
      for key = 0 to 7 do
        Vstore.load store ~key ~value:0
      done;
      let e = Vstore.find_exn store 3 in
      let _, wts = Vstore.read_versioned e in
      let txn =
        Txn.make
          ~tid:(Timestamp.Tid.make ~seq:1 ~client_id:7)
          ~read_set:[ { key = 3; wts } ]
          ~write_set:[ { key = 3; value = 99 } ]
      in
      (match Occ.validate store txn ~ts:(ts 1.0) with
      | `Ok -> Occ.finish store txn ~ts:(ts 1.0) ~commit:true
      | `Abort -> Alcotest.fail "validation aborted");
      Alcotest.(check (pair int int)) "no pending residue" (0, 0)
        (Vstore.pending_counts store))

let test_owner_partition_ownership () =
  with_checker (fun () ->
      let tr = Trecord.create ~cores:2 in
      let tid = Timestamp.Tid.make ~seq:1 ~client_id:0 in
      (* Own partition under an actor scope: fine. *)
      Owner.with_core 0 (fun () -> ignore (Trecord.find tr ~core:0 tid));
      (* Maintenance outside any actor scope: fine. *)
      ignore (Trecord.find tr ~core:1 tid);
      (* A foreign partition inside an actor scope: caught. *)
      expect_violation "foreign partition" (fun () ->
          Owner.with_core 0 (fun () -> Trecord.find tr ~core:1 tid)))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "Z1 violations" `Quick test_z1_violations;
          Alcotest.test_case "Z1 clean" `Quick test_z1_clean;
          Alcotest.test_case "Z1 live fast path flagged" `Quick
            test_z1_live_fastpath_flagged;
          Alcotest.test_case "Z1 live mailbox allowlisted" `Quick
            test_z1_live_mailbox_allowlisted;
          Alcotest.test_case "Z1 node core flagged" `Quick
            test_z1_node_core_flagged;
          Alcotest.test_case "Z1 node shim allowlisted" `Quick
            test_z1_node_shim_allowlisted;
          Alcotest.test_case "Z2 violations" `Quick test_z2_violations;
          Alcotest.test_case "Z2 clean" `Quick test_z2_clean;
          Alcotest.test_case "Z3 violations" `Quick test_z3_violations;
          Alcotest.test_case "Z3 clean" `Quick test_z3_clean;
          Alcotest.test_case "Z3 catches pre-fix Vstore.find" `Quick
            test_z3_catches_prefix_vstore_race;
          Alcotest.test_case "Z4 violation" `Quick test_z4_violation;
          Alcotest.test_case "Z4 clean" `Quick test_z4_clean;
          Alcotest.test_case "deterministic output" `Quick test_deterministic;
        ] );
      ( "config",
        [
          Alcotest.test_case "overrides" `Quick test_config_overrides;
          Alcotest.test_case "unknown key rejected" `Quick
            test_config_unknown_key_rejected;
          Alcotest.test_case "shipped config scopes lib/live" `Quick
            test_real_config_scopes_live;
          Alcotest.test_case "shipped config scopes lib/node" `Quick
            test_real_config_scopes_node;
        ] );
      ( "owner",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_owner_disabled_is_noop;
          Alcotest.test_case "catches pre-fix find race" `Quick
            test_owner_catches_prefix_find_race;
          Alcotest.test_case "catches unguarded mutation" `Quick
            test_owner_catches_unguarded_mutation;
          Alcotest.test_case "occ roundtrip passes" `Quick
            test_owner_passes_occ_roundtrip;
          Alcotest.test_case "trecord partition ownership" `Quick
            test_owner_partition_ownership;
        ] );
    ]
