(* The cluster backend's wire layer: round-trip per message kind,
   encode determinism, and totality of decode under truncation,
   corruption and random fuzz — hostile input must yield [Error _]
   and never an exception (ISSUE satellite 1). *)

module Wire = Mk_wire.Wire
module Codec = Mk_wire.Codec
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Replica = Mk_meerkat.Replica

(* --- seeded generators --- *)

let i rng = Random.State.int rng 1_000_000

let ts rng =
  Timestamp.make
    ~time:(Random.State.float rng 1e6)
    ~client_id:(Random.State.int rng 64)

let tid rng =
  Timestamp.Tid.make
    ~seq:(Random.State.int rng 100_000)
    ~client_id:(Random.State.int rng 64)

let txn rng =
  let read_set =
    List.init
      (Random.State.int rng 4)
      (fun _ -> { Txn.key = Random.State.int rng 256; wts = ts rng })
  in
  let write_set =
    List.init
      (Random.State.int rng 4)
      (fun _ -> { Txn.key = Random.State.int rng 256; value = i rng })
  in
  Txn.make ~tid:(tid rng) ~read_set ~write_set

let status rng =
  match Random.State.int rng 6 with
  | 0 -> Txn.Validated_ok
  | 1 -> Txn.Validated_abort
  | 2 -> Txn.Accepted_commit
  | 3 -> Txn.Accepted_abort
  | 4 -> Txn.Committed
  | _ -> Txn.Aborted

let decision rng : Codec.decision =
  if Random.State.bool rng then `Commit else `Abort

let accept_reply rng : Codec.accept_reply =
  match Random.State.int rng 3 with
  | 0 -> `Accepted
  | 1 -> `Stale (Random.State.int rng 100)
  | _ -> `Finalized (status rng)

let record_view rng =
  {
    Replica.txn = txn rng;
    ts = ts rng;
    status = status rng;
    view = Random.State.int rng 10;
    accept_view =
      (if Random.State.bool rng then Some (Random.State.int rng 10) else None);
  }

let coord_reply rng : Codec.coord_reply =
  match Random.State.int rng 3 with
  | 0 -> `View_ok None
  | 1 -> `View_ok (Some (record_view rng))
  | _ -> `Stale (Random.State.int rng 100)

let store_row rng =
  {
    Codec.key = Random.State.int rng 256;
    value = i rng;
    wts = ts rng;
    rts = ts rng;
  }

let records rng =
  List.init
    (Random.State.int rng 3)
    (fun _ -> (Random.State.int rng 1000, record_view rng))

(* One random message of each of the 16 wire kinds. *)
let gen_msg rng k : Codec.t =
  match k with
  | 0 -> Get { coord = i rng; slot = i rng; seq = i rng; key = i rng }
  | 1 ->
      Validate
        { coord = i rng; slot = i rng; seq = i rng; txn = txn rng; ts = ts rng }
  | 2 ->
      Accept
        {
          coord = i rng;
          slot = i rng;
          seq = i rng;
          txn = txn rng;
          ts = ts rng;
          decision = decision rng;
          view = Random.State.int rng 10;
        }
  | 3 ->
      Write_back
        { txn = txn rng; ts = ts rng; commit = Random.State.bool rng }
  | 4 ->
      Get_reply
        {
          slot = i rng;
          seq = i rng;
          replica = Random.State.int rng 7;
          key = i rng;
          value = i rng;
          wts = ts rng;
        }
  | 5 ->
      Validated
        {
          slot = i rng;
          seq = i rng;
          replica = Random.State.int rng 7;
          status = status rng;
        }
  | 6 ->
      Accepted
        {
          slot = i rng;
          seq = i rng;
          replica = Random.State.int rng 7;
          reply = accept_reply rng;
        }
  | 7 ->
      Heartbeat { from_ = Random.State.int rng 7; paused = Random.State.bool rng }
  | 8 ->
      Coord_change
        {
          observer = Random.State.int rng 7;
          tid = tid rng;
          view = Random.State.int rng 10;
        }
  | 9 ->
      Coord_reply
        {
          observer = Random.State.int rng 7;
          replica = Random.State.int rng 7;
          tid = tid rng;
          reply = coord_reply rng;
        }
  | 10 ->
      Vc_accept
        {
          observer = Random.State.int rng 7;
          txn = txn rng;
          ts = ts rng;
          decision = decision rng;
          view = Random.State.int rng 10;
        }
  | 11 ->
      Vc_accept_reply
        {
          observer = Random.State.int rng 7;
          replica = Random.State.int rng 7;
          tid = tid rng;
          reply = accept_reply rng;
        }
  | 12 -> Epoch_change { initiator = Random.State.int rng 7; epoch = i rng }
  | 13 ->
      Epoch_records
        { replica = Random.State.int rng 7; epoch = i rng; records = records rng }
  | 14 ->
      Epoch_install
        {
          epoch = i rng;
          records = records rng;
          store =
            (if Random.State.bool rng then
               Some (List.init (Random.State.int rng 4) (fun _ -> store_row rng))
             else None);
        }
  | _ -> Shutdown

let n_kinds = 16

(* --- round-trip and determinism --- *)

let test_roundtrip_all_kinds () =
  let rng = Random.State.make [| 0xC0DEC |] in
  for k = 0 to n_kinds - 1 do
    for _ = 1 to 25 do
      let m = gen_msg rng k in
      let encoded = Codec.encode m in
      match Codec.decode encoded with
      | Error e ->
          Alcotest.failf "%s failed to decode: %s" (Codec.kind_name m)
            (Wire.error_to_string e)
      | Ok m' ->
          if not (Codec.equal m m') then
            Alcotest.failf "%s round-trip mismatch: %a vs %a"
              (Codec.kind_name m) Codec.pp m Codec.pp m';
          (* Deterministic encode: re-encoding the decoded message
             reproduces the exact bytes. *)
          Alcotest.(check string)
            (Codec.kind_name m ^ " canonical bytes")
            encoded (Codec.encode m')
    done
  done

let test_kind_tags_stable () =
  (* Frame tags are a wire contract: 1..16 in declaration order, and
     byte 3 of every frame is the tag. *)
  let rng = Random.State.make [| 42 |] in
  let seen = Array.make (n_kinds + 1) false in
  for k = 0 to n_kinds - 1 do
    let m = gen_msg rng k in
    let tag = Codec.kind m in
    Alcotest.(check bool)
      (Codec.kind_name m ^ " tag in 1..16")
      true
      (tag >= 1 && tag <= n_kinds && not seen.(tag));
    seen.(tag) <- true;
    Alcotest.(check int)
      (Codec.kind_name m ^ " tag framed")
      tag
      (Char.code (Codec.encode m).[3])
  done

(* --- shard-stamped frames (wire v2) --- *)

let test_shard_roundtrip () =
  let rng = Random.State.make [| 0x5A4D |] in
  List.iter
    (fun shard ->
      for k = 0 to n_kinds - 1 do
        let m = gen_msg rng k in
        let encoded = Codec.encode_shard ~shard m in
        match Codec.decode_shard encoded with
        | Error e ->
            Alcotest.failf "%s shard %d failed to decode: %s"
              (Codec.kind_name m) shard (Wire.error_to_string e)
        | Ok (shard', m') ->
            Alcotest.(check int) (Codec.kind_name m ^ " shard") shard shard';
            if not (Codec.equal m m') then
              Alcotest.failf "%s shard round-trip mismatch" (Codec.kind_name m)
      done)
    [ 0; 1; 7; 255; Wire.max_shard ];
  (* encode is exactly encode_shard ~shard:0, and decode ignores the
     stamp. *)
  let m = gen_msg rng 0 in
  Alcotest.(check string) "encode = shard 0" (Codec.encode m)
    (Codec.encode_shard ~shard:0 m);
  match Codec.decode (Codec.encode_shard ~shard:9 m) with
  | Ok m' -> Alcotest.(check bool) "decode ignores shard" true (Codec.equal m m')
  | Error e -> Alcotest.failf "decode: %s" (Wire.error_to_string e)

let test_shard_header_layout () =
  (* The shard id travels as a little-endian u16 at bytes 4-5, between
     the kind tag and the payload length. *)
  let rng = Random.State.make [| 0x5A4E |] in
  let m = gen_msg rng 1 in
  let s = Codec.encode_shard ~shard:0x0102 m in
  Alcotest.(check int) "shard lo byte" 0x02 (Char.code s.[4]);
  Alcotest.(check int) "shard hi byte" 0x01 (Char.code s.[5]);
  Alcotest.(check int) "header bytes" 10 Wire.header_bytes;
  Alcotest.(check int) "wire version" 2 Wire.version

let test_shard_range_checked () =
  let rng = Random.State.make [| 0x5A4F |] in
  let m = gen_msg rng 0 in
  List.iter
    (fun shard ->
      match Codec.encode_shard ~shard m with
      | (_ : string) -> Alcotest.failf "encode_shard accepted %d" shard
      | exception Invalid_argument _ -> ())
    [ -1; Wire.max_shard + 1; max_int ]

(* --- reused-buffer encoding and multi-frame datagrams --- *)

let test_encode_into_bit_identical () =
  (* The zero-alloc encode path must be a bitwise clone of the string
     one: the shim coalesces frames built by [encode_shard_into], and
     the golden equivalence of the three backends rests on the frames
     being the same bytes either way. *)
  let rng = Random.State.make [| 0xB17E |] in
  let scratch = Buffer.create 16 in
  let out = Buffer.create 16 in
  List.iter
    (fun shard ->
      for k = 0 to n_kinds - 1 do
        let m = gen_msg rng k in
        Buffer.clear out;
        (* Pre-dirty the scratch: a frame must not depend on what the
           previous one left behind. *)
        Buffer.add_string scratch "stale bytes";
        Codec.encode_shard_into ~scratch ~out ~shard m;
        Alcotest.(check string)
          (Codec.kind_name m ^ " into = string encode")
          (Codec.encode_shard ~shard m)
          (Buffer.contents out)
      done)
    [ 0; 3; Wire.max_shard ]

let test_multi_frame_datagram () =
  (* Coalescing: successive [encode_shard_into] calls append frames,
     the result is exactly the concatenation of the per-frame strings,
     and [decode_shard_at] walks it back to the same message sequence
     a per-frame [decode_shard] would give. *)
  let rng = Random.State.make [| 0xD6 |] in
  let msgs = List.init 20 (fun j -> (j mod 5, gen_msg rng (j mod n_kinds))) in
  let scratch = Buffer.create 16 in
  let out = Buffer.create 256 in
  List.iter (fun (shard, m) -> Codec.encode_shard_into ~scratch ~out ~shard m) msgs;
  let dgram = Buffer.contents out in
  let frames = List.map (fun (shard, m) -> Codec.encode_shard ~shard m) msgs in
  Alcotest.(check string) "coalesced datagram = concatenated frames"
    (String.concat "" frames) dgram;
  let rec walk pos acc =
    if pos = String.length dgram then List.rev acc
    else
      match Codec.decode_shard_at dgram ~pos with
      | Error e ->
          Alcotest.failf "decode_shard_at %d: %s" pos (Wire.error_to_string e)
      | Ok (sm, next) ->
          if next <= pos then Alcotest.failf "cursor stuck at %d" pos;
          walk next (sm :: acc)
  in
  let decoded = walk 0 [] in
  Alcotest.(check int) "every frame decoded" (List.length msgs)
    (List.length decoded);
  List.iter2
    (fun (shard, m) (shard', m') ->
      Alcotest.(check int) (Codec.kind_name m ^ " shard kept") shard shard';
      if not (Codec.equal m m') then
        Alcotest.failf "%s multi-frame round-trip mismatch" (Codec.kind_name m))
    msgs decoded;
  (* A torn tail degrades to Error at the last frame's offset without
     disturbing the valid prefix. *)
  let last = List.nth frames (List.length frames - 1) in
  let last_start = String.length dgram - String.length last in
  let cut = String.sub dgram 0 (String.length dgram - 3) in
  match Codec.decode_shard_at cut ~pos:last_start with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated tail frame decoded"

(* --- totality: truncation, corruption, fuzz --- *)

let expect_error what = function
  | Error _ -> ()
  | Ok (m : Codec.t) ->
      Alcotest.failf "%s decoded as %s" what (Codec.kind_name m)

let test_truncation_is_error () =
  let rng = Random.State.make [| 7 |] in
  for k = 0 to n_kinds - 1 do
    let m = gen_msg rng k in
    let s = Codec.encode m in
    for n = 0 to String.length s - 1 do
      expect_error
        (Printf.sprintf "%s truncated to %d bytes" (Codec.kind_name m) n)
        (Codec.decode (String.sub s 0 n))
    done
  done

let corrupt s pos c =
  let b = Bytes.of_string s in
  Bytes.set b pos c;
  Bytes.to_string b

let test_header_corruption () =
  let rng = Random.State.make [| 9 |] in
  let s = Codec.encode (gen_msg rng 0) in
  (match Codec.decode (corrupt s 0 'X') with
  | Error Wire.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic not detected");
  (match Codec.decode (corrupt s 2 '\xfe') with
  | Error (Wire.Bad_version 0xfe) -> ()
  | _ -> Alcotest.fail "bad version not detected");
  (match Codec.decode (corrupt s 3 '\xee') with
  | Error (Wire.Unknown_kind 0xee) -> ()
  | _ -> Alcotest.fail "unknown kind not detected");
  match Codec.decode (s ^ "!?") with
  | Error (Wire.Trailing 2) -> ()
  | _ -> Alcotest.fail "trailing junk not detected"

let test_byte_flip_fuzz () =
  (* Flip one random byte anywhere in a valid frame: decode must
     return — Ok or Error, never an exception. *)
  let rng = Random.State.make [| 0xF122 |] in
  for _ = 1 to 2000 do
    let m = gen_msg rng (Random.State.int rng n_kinds) in
    let s = Codec.encode m in
    let pos = Random.State.int rng (String.length s) in
    let flipped = corrupt s pos (Char.chr (Random.State.int rng 256)) in
    match Codec.decode flipped with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "decode raised %s on %s with byte %d flipped"
          (Printexc.to_string e) (Codec.kind_name m) pos
  done

let test_random_garbage () =
  let rng = Random.State.make [| 0xBAD |] in
  for _ = 1 to 2000 do
    let len = Random.State.int rng 64 in
    let s =
      String.init len (fun j ->
          (* Force a non-'M' first byte so every input is invalid. *)
          if j = 0 then 'z' else Char.chr (Random.State.int rng 256))
    in
    match Codec.decode s with
    | Error _ -> ()
    | Ok m ->
        Alcotest.failf "garbage decoded as %s" (Codec.kind_name m)
    | exception e ->
        Alcotest.failf "decode raised %s on garbage" (Printexc.to_string e)
  done

let test_hostile_count_bounded () =
  (* A 4-billion-element list header must fail before allocation:
     the count is checked against the remaining bytes. *)
  let b = Buffer.create 8 in
  Wire.w_u32 b 0xFFFFFFFF;
  Wire.w_u8 b 1;
  let s = Buffer.contents b in
  (match Wire.r_list ~elt_min:1 Wire.r_u8 (Wire.cursor s) with
  | Error (Wire.Malformed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "hostile count accepted");
  match Wire.r_array ~elt_min:1 Wire.r_u8 (Wire.cursor s) with
  | Error (Wire.Malformed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "hostile array count accepted"

(* --- primitive round-trips --- *)

let test_f64_exact_bits () =
  List.iter
    (fun f ->
      let b = Buffer.create 8 in
      Wire.w_f64 b f;
      match Wire.r_f64 (Wire.cursor (Buffer.contents b)) with
      | Ok f' ->
          Alcotest.(check int64) "f64 bits" (Int64.bits_of_float f)
            (Int64.bits_of_float f')
      | Error e -> Alcotest.failf "f64: %s" (Wire.error_to_string e))
    [ 0.; -0.; 1.5; -1e300; 1e-308; Float.nan; Float.infinity;
      Float.neg_infinity ]

let test_u32_range () =
  (* In-range values round-trip; anything that would truncate into a
     wrong length on the wire is rejected loudly at encode time. *)
  List.iter
    (fun n ->
      let b = Buffer.create 4 in
      Wire.w_u32 b n;
      match Wire.r_u32 (Wire.cursor (Buffer.contents b)) with
      | Ok n' -> Alcotest.(check int) "u32" n n'
      | Error e -> Alcotest.failf "u32: %s" (Wire.error_to_string e))
    [ 0; 1; 0xFFFF; 0x10000; 0xFFFFFFFF ];
  List.iter
    (fun n ->
      match Wire.w_u32 (Buffer.create 4) n with
      | () -> Alcotest.failf "w_u32 accepted %d" n
      | exception Invalid_argument _ -> ())
    [ -1; min_int; 0x1_0000_0000; max_int ]

let test_i64_full_range () =
  List.iter
    (fun n ->
      let b = Buffer.create 8 in
      Wire.w_i64 b n;
      match Wire.r_i64 (Wire.cursor (Buffer.contents b)) with
      | Ok n' -> Alcotest.(check int) "i64" n n'
      | Error e -> Alcotest.failf "i64: %s" (Wire.error_to_string e))
    [ 0; 1; -1; 42; max_int; min_int ]

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip all kinds" `Quick
            test_roundtrip_all_kinds;
          Alcotest.test_case "kind tags stable" `Quick test_kind_tags_stable;
          Alcotest.test_case "shard stamp round-trip" `Quick
            test_shard_roundtrip;
          Alcotest.test_case "shard header layout" `Quick
            test_shard_header_layout;
          Alcotest.test_case "shard range checked" `Quick
            test_shard_range_checked;
          Alcotest.test_case "encode_into bit-identical" `Quick
            test_encode_into_bit_identical;
          Alcotest.test_case "multi-frame datagram" `Quick
            test_multi_frame_datagram;
        ] );
      ( "totality",
        [
          Alcotest.test_case "truncation is Error" `Quick
            test_truncation_is_error;
          Alcotest.test_case "header corruption" `Quick test_header_corruption;
          Alcotest.test_case "byte-flip fuzz" `Quick test_byte_flip_fuzz;
          Alcotest.test_case "random garbage" `Quick test_random_garbage;
          Alcotest.test_case "hostile count bounded" `Quick
            test_hostile_count_bounded;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "f64 exact bits" `Quick test_f64_exact_bits;
          Alcotest.test_case "u32 range checked" `Quick test_u32_range;
          Alcotest.test_case "i64 full range" `Quick test_i64_full_range;
        ] );
    ]
