(* The measurement harness: closed-loop runner, peak search, and the
   serializability checker itself. *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Runner = Mk_harness.Runner
module Checker = Mk_harness.Checker
module Workload = Mk_workload.Workload

(* A synthetic in-simulator system with known service behaviour, so
   runner numbers can be verified analytically: every transaction
   takes exactly [latency] µs and commits unless its first write key
   is odd. *)
let fake_system engine ~latency =
  let module Fake = struct
    type t = unit

    let name () = "fake"
    let threads () = 1

    let handle =
      Mk_obs.Obs.create ~clock:(fun () -> Engine.now engine) ()

    let submit () ~client:_ (req : Intf.txn_request) ~on_done =
      Engine.schedule engine ~delay:latency (fun () ->
          let committed =
            match Array.to_list req.writes with
            | (key, _) :: _ -> key mod 2 = 0
            | [] -> true
          in
          Mk_obs.Obs.note_decision handle ~committed ~fast:true;
          on_done ~committed)

    let obs () = handle
  end in
  Intf.Packed ((module Fake), ())

let test_runner_goodput_matches_littles_law () =
  let engine = Engine.create ~seed:1 () in
  let system = fake_system engine ~latency:10.0 in
  (* Workload over even keys only: everything commits. One client,
     10 µs per txn -> 100k txn/s. *)
  let wl =
    Workload.write_only ~rng:(Mk_util.Rng.create ~seed:2) ~keys:1 ~theta:0.0 ~nwrites:1
  in
  let r =
    Runner.run ~engine ~system ~workload:wl ~n_clients:1 ~warmup:100.0 ~measure:1000.0
      ~busy:(fun () -> 0.5)
  in
  Alcotest.(check int) "commits in window" 100 r.Runner.committed;
  Alcotest.(check bool) "goodput = 100k/s" true (abs_float (r.Runner.goodput -. 1e5) < 1e3);
  Alcotest.(check (float 1e-9)) "abort rate 0" 0.0 r.Runner.abort_rate;
  Alcotest.(check bool) "latency = 10us" true (abs_float (r.Runner.mean_latency -. 10.0) < 0.01);
  Alcotest.(check (float 1e-9)) "busy passthrough" 0.5 r.Runner.busy

(* Like [fake_system] but aborts every third attempt: retries then
   succeed, so the runner sees both outcomes deterministically. *)
let flaky_system engine ~latency =
  let module Flaky = struct
    type t = unit

    let name () = "flaky"
    let threads () = 1
    let attempts = ref 0

    let handle =
      Mk_obs.Obs.create ~clock:(fun () -> Engine.now engine) ()

    let submit () ~client:_ (_ : Intf.txn_request) ~on_done =
      Engine.schedule engine ~delay:latency (fun () ->
          incr attempts;
          let committed = !attempts mod 3 <> 0 in
          Mk_obs.Obs.note_decision handle ~committed ~fast:true;
          on_done ~committed)

    let obs () = handle
  end in
  Intf.Packed ((module Flaky), ())

let test_runner_counts_aborts_and_retries () =
  let engine = Engine.create ~seed:3 () in
  let system = flaky_system engine ~latency:10.0 in
  let wl =
    Workload.write_only ~rng:(Mk_util.Rng.create ~seed:4) ~keys:2 ~theta:0.0 ~nwrites:1
  in
  let r =
    Runner.run ~engine ~system ~workload:wl ~n_clients:2 ~warmup:50.0 ~measure:2000.0
      ~busy:(fun () -> 0.0)
  in
  Alcotest.(check bool) "some commits" true (r.Runner.committed > 0);
  Alcotest.(check bool) "some aborts" true (r.Runner.aborted > 0);
  Alcotest.(check bool) "abort rate in (0,1)" true
    (r.Runner.abort_rate > 0.0 && r.Runner.abort_rate < 1.0)

let test_peak_picks_best () =
  (* A fake whose goodput peaks at 2 clients (service center with two
     slots: more clients queue and add latency but not throughput —
     modelled directly by capping concurrency). *)
  let make ~n_clients =
    let engine = Engine.create ~seed:5 () in
    (* With 1 server slot of 10 µs: goodput is the same for any client
       count; emulate degradation by inflating latency superlinearly
       past 2 clients. *)
    let latency = if n_clients <= 2 then 10.0 else 10.0 *. float_of_int n_clients in
    (engine, fake_system engine ~latency, fun () -> 0.0)
  in
  let workload () =
    Workload.write_only ~rng:(Mk_util.Rng.create ~seed:6) ~keys:1 ~theta:0.0 ~nwrites:1
  in
  let clients, r =
    Runner.peak ~make ~workload ~ladder:[ 1; 2; 8 ] ~warmup:0.0 ~measure:1000.0
  in
  Alcotest.(check int) "picks 2 clients" 2 clients;
  Alcotest.(check bool) "peak goodput ~200k/s" true
    (abs_float (r.Runner.goodput -. 2e5) < 2e4)

(* --- Checker --- *)

let tsn time = Timestamp.make ~time ~client_id:0

let txn ~seq ~reads ~writes =
  Txn.make
    ~tid:(Timestamp.Tid.make ~seq ~client_id:1)
    ~read_set:(List.map (fun (key, wts) -> ({ key; wts } : Txn.read_entry)) reads)
    ~write_set:(List.map (fun (key, value) -> ({ key; value } : Txn.write_entry)) writes)

let test_checker_accepts_serial_history () =
  let t1 = txn ~seq:1 ~reads:[ (0, Timestamp.zero) ] ~writes:[ (0, 1) ] in
  let t2 = txn ~seq:2 ~reads:[ (0, tsn 1.0) ] ~writes:[ (0, 2) ] in
  let t3 = txn ~seq:3 ~reads:[ (0, tsn 2.0) ] ~writes:[] in
  Alcotest.(check bool) "valid chain" true
    (Checker.check [ (t3, tsn 3.0); (t1, tsn 1.0); (t2, tsn 2.0) ] = Ok ())

let test_checker_rejects_stale_read () =
  let t1 = txn ~seq:1 ~reads:[] ~writes:[ (0, 1) ] in
  (* t2 at ts 2 read version zero although t1 wrote at ts 1. *)
  let t2 = txn ~seq:2 ~reads:[ (0, Timestamp.zero) ] ~writes:[] in
  match Checker.check [ (t1, tsn 1.0); (t2, tsn 2.0) ] with
  | Error v ->
      Alcotest.(check int) "key" 0 v.Checker.key;
      Alcotest.(check bool) "expected version is t1's" true
        (Timestamp.equal v.Checker.expected_wts (tsn 1.0))
  | Ok () -> Alcotest.fail "stale read not caught"

let test_checker_rejects_future_read () =
  (* t1 at ts 1 claims to have read t2's ts-2 version: impossible. *)
  let t1 = txn ~seq:1 ~reads:[ (0, tsn 2.0) ] ~writes:[] in
  let t2 = txn ~seq:2 ~reads:[] ~writes:[ (0, 9) ] in
  match Checker.check [ (t1, tsn 1.0); (t2, tsn 2.0) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "future read not caught"

let test_checker_empty_history () =
  Alcotest.(check bool) "empty ok" true (Checker.check [] = Ok ())

let test_checker_final_state () =
  let t1 = txn ~seq:1 ~reads:[] ~writes:[ (0, 1); (1, 10) ] in
  let t2 = txn ~seq:2 ~reads:[] ~writes:[ (0, 2) ] in
  let state = Checker.final_state [ (t2, tsn 2.0); (t1, tsn 1.0) ] in
  Alcotest.(check (option (pair int bool))) "key 0 last write"
    (Some (2, true))
    (Option.map
       (fun (v, ts) -> (v, Timestamp.equal ts (tsn 2.0)))
       (Hashtbl.find_opt state 0));
  Alcotest.(check (option int)) "key 1" (Some 10)
    (Option.map fst (Hashtbl.find_opt state 1))

let test_checker_violation_printer () =
  let v =
    {
      Checker.tid = Timestamp.Tid.make ~seq:1 ~client_id:2;
      key = 5;
      expected_wts = tsn 1.0;
      observed_wts = Timestamp.zero;
    }
  in
  let s = Format.asprintf "%a" Checker.pp_violation v in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec probe i = i + n <= m && (String.sub s i n = sub || probe (i + 1)) in
    probe 0
  in
  Alcotest.(check bool) "mentions key" true (contains ~sub:"key 5" s)

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "goodput and latency" `Quick
            test_runner_goodput_matches_littles_law;
          Alcotest.test_case "aborts counted" `Quick test_runner_counts_aborts_and_retries;
          Alcotest.test_case "peak search" `Quick test_peak_picks_best;
        ] );
      ( "checker",
        [
          Alcotest.test_case "accepts serial history" `Quick
            test_checker_accepts_serial_history;
          Alcotest.test_case "rejects stale read" `Quick test_checker_rejects_stale_read;
          Alcotest.test_case "rejects future read" `Quick test_checker_rejects_future_read;
          Alcotest.test_case "empty history" `Quick test_checker_empty_history;
          Alcotest.test_case "final state" `Quick test_checker_final_state;
          Alcotest.test_case "violation printer" `Quick test_checker_violation_printer;
        ] );
    ]
