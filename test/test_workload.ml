(* Workload generators: Zipf distribution statistics, YCSB-T shape,
   the Retwis mix (Table 2). *)

module Rng = Mk_util.Rng
module Zipf = Mk_workload.Zipf
module Workload = Mk_workload.Workload
module Intf = Mk_model.System_intf

let test_zipf_uniform () =
  let rng = Rng.create ~seed:1 in
  let z = Zipf.create ~rng ~n:100 ~theta:0.0 () in
  let counts = Array.make 100 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let k = Zipf.sample z in
    counts.(k) <- counts.(k) + 1
  done;
  (* Every key drawn, roughly evenly: chi-square-ish slack of ±40%. *)
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d near uniform" i)
        true
        (c > 600 && c < 1400))
    counts

let test_zipf_in_range () =
  let rng = Rng.create ~seed:2 in
  List.iter
    (fun theta ->
      let z = Zipf.create ~rng ~n:977 ~theta () in
      for _ = 1 to 10_000 do
        let k = Zipf.sample z in
        Alcotest.(check bool) "in range" true (k >= 0 && k < 977)
      done)
    [ 0.0; 0.5; 0.9; 0.99 ]

let test_zipf_skew_increases_with_theta () =
  let hottest_fraction theta =
    let rng = Rng.create ~seed:3 in
    let z = Zipf.create ~scramble:false ~rng ~n:1000 ~theta () in
    let hot = ref 0 in
    let draws = 50_000 in
    for _ = 1 to draws do
      if Zipf.sample z = 0 then incr hot
    done;
    float_of_int !hot /. float_of_int draws
  in
  let f0 = hottest_fraction 0.0 in
  let f6 = hottest_fraction 0.6 in
  let f9 = hottest_fraction 0.9 in
  Alcotest.(check bool) "0 < 0.6" true (f0 < f6);
  Alcotest.(check bool) "0.6 < 0.9" true (f6 < f9);
  Alcotest.(check bool) "0.9 is heavily skewed" true (f9 > 0.05)

let test_zipf_matches_analytic_probability () =
  let rng = Rng.create ~seed:4 in
  let z = Zipf.create ~scramble:false ~rng ~n:50 ~theta:0.8 () in
  let draws = 200_000 in
  let counts = Array.make 50 0 in
  for _ = 1 to draws do
    let k = Zipf.sample z in
    counts.(k) <- counts.(k) + 1
  done;
  (* Compare empirical vs analytic for the top 5 ranks (loose 15%). *)
  for rank = 0 to 4 do
    let expected = Zipf.probability z ~rank in
    let got = float_of_int counts.(rank) /. float_of_int draws in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d" rank)
      true
      (abs_float (got -. expected) /. expected < 0.15)
  done;
  (* Analytic probabilities sum to ~1. *)
  let sum = ref 0.0 in
  for rank = 0 to 49 do
    sum := !sum +. Zipf.probability z ~rank
  done;
  Alcotest.(check bool) "probabilities sum to 1" true (abs_float (!sum -. 1.0) < 1e-9)

let test_zipf_scramble_is_bijective () =
  (* With full skew removed (theta=0) the scrambled sampler must still
     cover the whole keyspace. *)
  let rng = Rng.create ~seed:5 in
  let n = 257 in
  let z = Zipf.create ~rng ~n ~theta:0.0 () in
  let seen = Array.make n false in
  for _ = 1 to 40_000 do
    seen.(Zipf.sample z) <- true
  done;
  Alcotest.(check bool) "all keys reachable" true (Array.for_all (fun b -> b) seen)

let test_zipf_validation () =
  let rng = Rng.create ~seed:6 in
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~rng ~n:0 ~theta:0.0 ()));
  Alcotest.check_raises "theta = 1" (Invalid_argument "Zipf.create: theta must be in [0,1)")
    (fun () -> ignore (Zipf.create ~rng ~n:10 ~theta:1.0 ()));
  (* Degenerate keyspace still works. *)
  let z1 = Zipf.create ~rng ~n:1 ~theta:0.5 () in
  Alcotest.(check int) "n=1 samples 0" 0 (Zipf.sample z1)

(* --- YCSB-T --- *)

let test_ycsb_t_shape () =
  let wl = Workload.ycsb_t ~rng:(Rng.create ~seed:7) ~keys:1024 ~theta:0.0 in
  Alcotest.(check string) "name" "YCSB-T" (Workload.name wl);
  for _ = 1 to 500 do
    let req = Workload.next wl in
    Alcotest.(check int) "one read" 1 (Array.length req.Intf.reads);
    Alcotest.(check int) "one write" 1 (Array.length req.Intf.writes);
    let wkey, _ = req.Intf.writes.(0) in
    Alcotest.(check int) "read-modify-write same key" req.Intf.reads.(0) wkey
  done

let test_ycsb_t_values_unique () =
  let wl = Workload.ycsb_t ~rng:(Rng.create ~seed:8) ~keys:64 ~theta:0.0 in
  let values = Hashtbl.create 64 in
  for _ = 1 to 200 do
    let req = Workload.next wl in
    let _, v = req.Intf.writes.(0) in
    Alcotest.(check bool) "value fresh" false (Hashtbl.mem values v);
    Hashtbl.add values v ()
  done

(* --- Retwis (Table 2) --- *)

let test_retwis_mix_matches_table2 () =
  let wl = Workload.retwis ~rng:(Rng.create ~seed:9) ~keys:4096 ~theta:0.0 in
  let n = 40_000 in
  for _ = 1 to n do
    ignore (Workload.next wl)
  done;
  let mix = Workload.mix_report wl in
  let fraction label =
    match List.assoc_opt label mix with
    | Some c -> float_of_int c /. float_of_int n
    | None -> Alcotest.failf "missing shape %s" label
  in
  let near label expected =
    let got = fraction label in
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %.0f%%" label (100.0 *. expected))
      true
      (abs_float (got -. expected) < 0.02)
  in
  near "Add User" 0.05;
  near "Follow/Unfollow" 0.15;
  near "Post Tweet" 0.30;
  near "Load Timeline" 0.50

let test_retwis_shapes () =
  let wl = Workload.retwis ~rng:(Rng.create ~seed:10) ~keys:4096 ~theta:0.0 in
  let avg_gets = ref 0.0 and avg_puts = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    let req = Workload.next wl in
    let gets = Array.length req.Intf.reads and puts = Array.length req.Intf.writes in
    avg_gets := !avg_gets +. float_of_int gets;
    avg_puts := !avg_puts +. float_of_int puts;
    (* Table 2 bounds: gets in [1,10], puts in {0,2,3,5}. *)
    Alcotest.(check bool) "gets bounded" true (gets >= 1 && gets <= 10);
    Alcotest.(check bool) "puts valid" true (List.mem puts [ 0; 2; 3; 5 ]);
    (* Keys within a transaction are distinct. *)
    let all =
      Array.to_list req.Intf.reads @ List.map fst (Array.to_list req.Intf.writes)
    in
    Alcotest.(check int) "distinct keys" (List.length all)
      (List.length (List.sort_uniq compare all))
  done;
  (* Expected means: gets = .05*1+.15*2+.30*3+.50*5.5 = 4.0;
     puts = .05*3+.15*2+.30*5 = 1.95. *)
  let mean_gets = !avg_gets /. float_of_int n in
  let mean_puts = !avg_puts /. float_of_int n in
  Alcotest.(check bool) "mean gets ~4.0" true (abs_float (mean_gets -. 4.0) < 0.15);
  Alcotest.(check bool) "mean puts ~1.95" true (abs_float (mean_puts -. 1.95) < 0.1)

(* --- test workloads --- *)

let test_read_only_and_write_only () =
  let ro = Workload.read_only ~rng:(Rng.create ~seed:11) ~keys:128 ~theta:0.0 ~nreads:3 in
  let req = Workload.next ro in
  Alcotest.(check int) "ro reads" 3 (Array.length req.Intf.reads);
  Alcotest.(check int) "ro writes" 0 (Array.length req.Intf.writes);
  let wo =
    Workload.write_only ~rng:(Rng.create ~seed:12) ~keys:128 ~theta:0.0 ~nwrites:2
  in
  let req = Workload.next wo in
  Alcotest.(check int) "wo reads" 0 (Array.length req.Intf.reads);
  Alcotest.(check int) "wo writes" 2 (Array.length req.Intf.writes)

(* --- Locality knob (DESIGN.md §13): the measured spanning ratio of a
   generated stream tracks the requested cross fraction, seed by seed,
   under the Mod placement the knob assumes. --- *)

let spanning_ratio ~shards ~cross ~seed n =
  let wl = Workload.rmw_pair ~rng:(Rng.create ~seed) ~keys:1024 ~theta:0.0 in
  Workload.set_locality wl (Some { Workload.shards; cross });
  let spans = ref 0 in
  for _ = 1 to n do
    if Workload.spans ~shards (Workload.next wl) then incr spans
  done;
  float_of_int !spans /. float_of_int n

let test_locality_cross_extremes () =
  List.iter
    (fun seed ->
      List.iter
        (fun shards ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "seed %d, %d shards: cross 0 never spans" seed
               shards)
            0.0
            (spanning_ratio ~shards ~cross:0.0 ~seed 2000);
          Alcotest.(check (float 0.0))
            (Printf.sprintf "seed %d, %d shards: cross 1 always spans" seed
               shards)
            1.0
            (spanning_ratio ~shards ~cross:1.0 ~seed 2000))
        [ 2; 4 ])
    [ 1; 2; 3; 4; 5 ]

let test_locality_tracks_cross () =
  List.iter
    (fun seed ->
      List.iter
        (fun cross ->
          let ratio = spanning_ratio ~shards:4 ~cross ~seed 5000 in
          if Float.abs (ratio -. cross) > 0.02 then
            Alcotest.failf
              "seed %d: requested cross %.2f but measured spanning ratio %.3f"
              seed cross ratio)
        [ 0.1; 0.3; 0.5 ])
    [ 1; 2; 3 ]

let test_locality_single_key_never_spans () =
  (* YCSB-T is one same-key RMW per transaction: even at cross 1.0
     there is nothing to spread, and the knob must not invent keys. *)
  let wl = Workload.ycsb_t ~rng:(Rng.create ~seed:7) ~keys:256 ~theta:0.0 in
  Workload.set_locality wl (Some { Workload.shards = 4; cross = 1.0 });
  for _ = 1 to 500 do
    let req = Workload.next wl in
    if Workload.spans ~shards:4 req then
      Alcotest.fail "a single-key transaction reported as spanning"
  done

let test_locality_keys_stay_in_range () =
  let keys = 96 in
  let wl = Workload.rmw_pair ~rng:(Rng.create ~seed:9) ~keys ~theta:0.9 in
  Workload.set_locality wl (Some { Workload.shards = 3; cross = 0.5 });
  for _ = 1 to 2000 do
    let req = Workload.next wl in
    Array.iter
      (fun k -> if k < 0 || k >= keys then Alcotest.failf "read key %d" k)
      req.Intf.reads;
    Array.iter
      (fun (k, _) ->
        if k < 0 || k >= keys then Alcotest.failf "write key %d" k)
      req.Intf.writes
  done

let test_locality_validation () =
  let wl = Workload.rmw_pair ~rng:(Rng.create ~seed:1) ~keys:64 ~theta:0.0 in
  List.iter
    (fun bad ->
      match Workload.set_locality wl (Some bad) with
      | () -> Alcotest.fail "out-of-range locality accepted"
      | exception Invalid_argument _ -> ())
    [
      { Workload.shards = 0; cross = 0.5 };
      { Workload.shards = 2; cross = -0.1 };
      { Workload.shards = 2; cross = 1.5 };
    ];
  (* Clearing the knob restores purely local generation semantics. *)
  Workload.set_locality wl None

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "uniform at theta 0" `Quick test_zipf_uniform;
          Alcotest.test_case "samples in range" `Quick test_zipf_in_range;
          Alcotest.test_case "skew grows with theta" `Quick
            test_zipf_skew_increases_with_theta;
          Alcotest.test_case "matches analytic pmf" `Quick
            test_zipf_matches_analytic_probability;
          Alcotest.test_case "scramble bijective" `Quick test_zipf_scramble_is_bijective;
          Alcotest.test_case "validation" `Quick test_zipf_validation;
        ] );
      ( "ycsb-t",
        [
          Alcotest.test_case "one RMW per txn" `Quick test_ycsb_t_shape;
          Alcotest.test_case "values unique" `Quick test_ycsb_t_values_unique;
        ] );
      ( "retwis",
        [
          Alcotest.test_case "mix matches Table 2" `Quick test_retwis_mix_matches_table2;
          Alcotest.test_case "shapes and key bounds" `Quick test_retwis_shapes;
        ] );
      ( "aux",
        [ Alcotest.test_case "read-only / write-only" `Quick test_read_only_and_write_only ]
      );
      ( "locality",
        [
          Alcotest.test_case "cross 0 and 1 extremes, 5 seeds" `Quick
            test_locality_cross_extremes;
          Alcotest.test_case "spanning ratio tracks cross" `Quick
            test_locality_tracks_cross;
          Alcotest.test_case "single-key never spans" `Quick
            test_locality_single_key_never_spans;
          Alcotest.test_case "keys stay in range" `Quick
            test_locality_keys_stay_in_range;
          Alcotest.test_case "knob validation" `Quick test_locality_validation;
        ] );
    ]
