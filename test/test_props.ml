(* Property-based tests (qcheck, registered as alcotest cases):
   invariants of the OCC checks, the epoch merge, recovery outcome
   selection, the zipf sampler and the data-structure substrate. *)

module Q = QCheck
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Vstore = Mk_storage.Vstore
module Occ = Mk_storage.Occ
module Quorum = Mk_meerkat.Quorum
module Replica = Mk_meerkat.Replica
module Epoch = Mk_meerkat.Epoch
module Recovery = Mk_meerkat.Recovery
module Checker = Mk_harness.Checker

let ts time client_id = Timestamp.make ~time ~client_id

(* --- generators --- *)

(* A random transaction over a small keyspace: reads a subset at
   version zero-or-given, RMWs some keys. The version fields are
   filled during replay, not generation. *)
let gen_op_plan =
  Q.Gen.(
    list_size (int_range 1 60)
      (pair (int_bound 7) (* key *) (int_bound 999) (* value *)))

(* Sequential OCC oracle: apply transactions one at a time in arrival
   order; track a model of what should be visible. *)
let arb_plan = Q.make ~print:(fun l -> string_of_int (List.length l)) gen_op_plan

(* Property: after any sequence of single-key RMW transactions driven
   through validate/finish (arrival order = timestamp order), the
   committed set is serializable and the store equals its replay. *)
let prop_occ_serializable plan =
  let store = Vstore.create ~shards:8 () in
  for key = 0 to 7 do
    Vstore.load store ~key ~value:0
  done;
  let committed = ref [] in
  List.iteri
    (fun i (key, value) ->
      let e = Vstore.find_exn store key in
      let _, wts = Vstore.read_versioned e in
      let txn =
        Txn.make
          ~tid:(Timestamp.Tid.make ~seq:i ~client_id:1)
          ~read_set:[ { key; wts } ]
          ~write_set:[ { key; value } ]
      in
      let stamp = ts (float_of_int (i + 1)) 1 in
      match Occ.validate store txn ~ts:stamp with
      | `Ok ->
          Occ.finish store txn ~ts:stamp ~commit:true;
          committed := (txn, stamp) :: !committed
      | `Abort -> ())
    plan;
  (* Sequential, immediately-finished RMWs never conflict: all commit. *)
  List.length !committed = List.length plan
  && Checker.check !committed = Ok ()

(* Property: interleaved validations (validate all, then finish all)
   never let two conflicting transactions both commit. *)
let prop_occ_no_conflicting_commits plan =
  let store = Vstore.create ~shards:8 () in
  for key = 0 to 7 do
    Vstore.load store ~key ~value:0
  done;
  let validated = ref [] in
  List.iteri
    (fun i (key, value) ->
      let e = Vstore.find_exn store key in
      let _, wts = Vstore.read_versioned e in
      let txn =
        Txn.make
          ~tid:(Timestamp.Tid.make ~seq:i ~client_id:1)
          ~read_set:[ { key; wts } ]
          ~write_set:[ { key; value } ]
      in
      let stamp = ts (float_of_int (i + 1)) 1 in
      match Occ.validate store txn ~ts:stamp with
      | `Ok -> validated := (txn, stamp) :: !validated
      | `Abort -> ())
    plan;
  (* Everything validated concurrently-pending; commit them all now.
     Pairwise conflict-freedom must hold among the validated set. *)
  let validated = List.rev !validated in
  let rec pairwise = function
    | [] -> true
    | (a, _) :: rest ->
        List.for_all (fun (b, _) -> not (Txn.conflicts a b)) rest && pairwise rest
  in
  let ok = pairwise validated in
  List.iter (fun (txn, stamp) -> Occ.finish store txn ~ts:stamp ~commit:true) validated;
  ok
  && Checker.check validated = Ok ()
  && Vstore.pending_counts store = (0, 0)

(* Property: validation followed by abort leaves the store exactly as
   before (values, versions, pending sets). *)
let prop_occ_abort_is_clean plan =
  let store = Vstore.create ~shards:8 () in
  for key = 0 to 7 do
    Vstore.load store ~key ~value:0
  done;
  let snapshot () =
    let acc = ref [] in
    Vstore.iter store (fun e ->
        acc :=
          (e.Vstore.key, e.Vstore.value, e.Vstore.wts, e.Vstore.rts) :: !acc);
    List.sort compare !acc
  in
  let before = snapshot () in
  List.iteri
    (fun i (key, value) ->
      let txn =
        Txn.make
          ~tid:(Timestamp.Tid.make ~seq:i ~client_id:1)
          ~read_set:[ { key; wts = Timestamp.zero } ]
          ~write_set:[ { key; value } ]
      in
      let stamp = ts (float_of_int (i + 1)) 1 in
      match Occ.validate store txn ~ts:stamp with
      | `Ok -> Occ.finish store txn ~ts:stamp ~commit:false
      | `Abort -> ())
    plan;
  snapshot () = before && Vstore.pending_counts store = (0, 0)

(* --- epoch merge properties --- *)

let gen_status =
  Q.Gen.oneofl
    [
      Txn.Validated_ok;
      Txn.Validated_abort;
      Txn.Committed;
      Txn.Aborted;
      Txn.Accepted_commit;
      Txn.Accepted_abort;
    ]

(* Random reports for 8 transactions across 3 replicas, each replica
   knowing a random subset with random statuses. *)
let gen_reports =
  Q.Gen.(
    let txns =
      List.init 8 (fun i ->
          Txn.make
            ~tid:(Timestamp.Tid.make ~seq:i ~client_id:1)
            ~read_set:[ { key = i mod 4; wts = Timestamp.zero } ]
            ~write_set:[ { key = i mod 4; value = i } ])
    in
    let gen_record txn =
      gen_status >>= fun status ->
      let accept_view =
        match status with
        | Txn.Accepted_commit | Txn.Accepted_abort -> Some 1
        | _ -> None
      in
      return
        ( 0,
          ({
             txn;
             ts = ts (float_of_int (Timestamp.Tid.hash txn.Txn.tid mod 100)) 1;
             status;
             view = (match accept_view with Some v -> v | None -> 0);
             accept_view;
           }
            : Replica.record_view) )
    in
    let gen_report replica =
      list_size (int_bound 8)
        (oneofl txns >>= gen_record)
      >>= fun records ->
      (* Dedupe by tid within one replica's report. *)
      let seen = Hashtbl.create 8 in
      let records =
        List.filter
          (fun (_, (v : Replica.record_view)) ->
            if Hashtbl.mem seen v.txn.Txn.tid then false
            else begin
              Hashtbl.add seen v.txn.Txn.tid ();
              true
            end)
          records
      in
      return { Epoch.replica; records }
    in
    gen_report 0 >>= fun r0 ->
    gen_report 1 >>= fun r1 -> return [ r0; r1 ])

let arb_reports = Q.make gen_reports

let prop_merge_all_final reports =
  let merged = Epoch.merge ~quorum:(Quorum.create ~n:3) ~reports in
  List.for_all (fun (_, (v : Replica.record_view)) -> Txn.is_final v.status) merged

let prop_merge_respects_final_outcomes reports =
  let merged = Epoch.merge ~quorum:(Quorum.create ~n:3) ~reports in
  let merged_status tid =
    List.find_map
      (fun (_, (v : Replica.record_view)) ->
        if Timestamp.Tid.equal v.txn.Txn.tid tid then Some v.status else None)
      merged
  in
  List.for_all
    (fun report ->
      List.for_all
        (fun (_, (v : Replica.record_view)) ->
          match v.Replica.status with
          | Txn.Committed -> merged_status v.txn.Txn.tid = Some Txn.Committed
          | Txn.Aborted -> merged_status v.txn.Txn.tid = Some Txn.Aborted
          | Txn.Validated_ok | Txn.Validated_abort | Txn.Accepted_commit
          | Txn.Accepted_abort ->
              merged_status v.txn.Txn.tid <> None)
        report.Epoch.records)
    reports

(* Caveat: random reports can claim both COMMITTED and ABORTED for one
   tid — impossible in real executions; filter those out. *)
let consistent_reports reports =
  let final = Hashtbl.create 16 in
  let consistent = ref true in
  List.iter
    (fun report ->
      List.iter
        (fun (_, (v : Replica.record_view)) ->
          match v.Replica.status with
          | Txn.Committed | Txn.Aborted -> begin
              match Hashtbl.find_opt final v.txn.Txn.tid with
              | Some s when s <> v.Replica.status -> consistent := false
              | _ -> Hashtbl.replace final v.txn.Txn.tid v.Replica.status
            end
          | _ -> ())
        report.Epoch.records)
    reports;
  !consistent

(* --- recovery choose properties --- *)

let gen_replies =
  Q.Gen.(
    let txn =
      Txn.make
        ~tid:(Timestamp.Tid.make ~seq:1 ~client_id:1)
        ~read_set:[ { key = 0; wts = Timestamp.zero } ]
        ~write_set:[ { key = 0; value = 1 } ]
    in
    list_size (int_range 2 3)
      (oneof
         [
           return Recovery.No_record;
           ( gen_status >>= fun status ->
             let accept_view =
               match status with
               | Txn.Accepted_commit | Txn.Accepted_abort -> Some 1
               | _ -> None
             in
             return
               (Recovery.Record
                  {
                    txn;
                    ts = ts 1.0 1;
                    status;
                    view = (match accept_view with Some v -> v | None -> 0);
                    accept_view;
                  }) );
         ]))

let arb_replies = Q.make gen_replies

let prop_choose_total replies =
  (* choose never raises on a majority and always returns a verdict. *)
  let replies = List.mapi (fun i r -> (i, r)) replies in
  match Recovery.choose ~quorum:(Quorum.create ~n:3) ~replies with
  | `Commit | `Abort -> true

let prop_choose_respects_finals replies =
  let finals =
    List.filter_map
      (function
        | Recovery.Record { Replica.status = Txn.Committed; _ } -> Some `Commit
        | Recovery.Record { Replica.status = Txn.Aborted; _ } -> Some `Abort
        | _ -> None)
      replies
  in
  match finals with
  | [] -> true
  | f :: rest when List.for_all (fun x -> x = f) rest ->
      Recovery.choose ~quorum:(Quorum.create ~n:3)
        ~replies:(List.mapi (fun i r -> (i, r)) replies)
      = f
  | _ -> true (* inconsistent random input; not a real execution *)

(* --- checker sanity: it accepts exactly replay-consistent histories --- *)

let prop_checker_accepts_generated_serial plan =
  (* Build a history that is serial by construction; checker must
     accept. *)
  let model = Hashtbl.create 8 in
  let committed =
    List.mapi
      (fun i (key, value) ->
        let wts =
          match Hashtbl.find_opt model key with
          | Some ts -> ts
          | None -> Timestamp.zero
        in
        let stamp = ts (float_of_int (i + 1)) 1 in
        Hashtbl.replace model key stamp;
        ( Txn.make
            ~tid:(Timestamp.Tid.make ~seq:i ~client_id:1)
            ~read_set:[ { key; wts } ]
            ~write_set:[ { key; value } ],
          stamp ))
      plan
  in
  Checker.check committed = Ok ()

(* --- zipf --- *)

let prop_zipf_in_range =
  Q.Test.make ~name:"zipf samples in range" ~count:200
    Q.(pair (int_range 1 500) (float_bound_exclusive 1.0))
    (fun (n, theta) ->
      let rng = Mk_util.Rng.create ~seed:(n + int_of_float (theta *. 1000.0)) in
      let z = Mk_workload.Zipf.create ~rng ~n ~theta () in
      let ok = ref true in
      for _ = 1 to 100 do
        let k = Mk_workload.Zipf.sample z in
        if k < 0 || k >= n then ok := false
      done;
      !ok)

(* --- heap vs sort --- *)

let prop_heap_sorts =
  Q.Test.make ~name:"heap drains in sorted order" ~count:200
    Q.(list (int_bound 10_000))
    (fun xs ->
      let h = Mk_util.Heap.create ~cmp:compare in
      List.iter (Mk_util.Heap.push h) xs;
      let rec drain acc =
        match Mk_util.Heap.pop h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* --- stats merge --- *)

let prop_stats_merge =
  Q.Test.make ~name:"stats merge = concatenation" ~count:200
    Q.(pair (list (float_bound_exclusive 1000.0)) (list (float_bound_exclusive 1000.0)))
    (fun (xs, ys) ->
      let a = Mk_util.Stats.create () and b = Mk_util.Stats.create () in
      let whole = Mk_util.Stats.create () in
      List.iter (Mk_util.Stats.add a) xs;
      List.iter (Mk_util.Stats.add b) ys;
      List.iter (Mk_util.Stats.add whole) (xs @ ys);
      let m = Mk_util.Stats.merge a b in
      Mk_util.Stats.count m = Mk_util.Stats.count whole
      && abs_float (Mk_util.Stats.mean m -. Mk_util.Stats.mean whole) < 1e-6
      && abs_float (Mk_util.Stats.variance m -. Mk_util.Stats.variance whole) < 1e-4)

(* --- tids and timestamps across shard groups (DESIGN.md §13) ---

   The zero-coordination argument for cross-shard 2PC (§5.2.4) rests
   on client-minted identifiers being globally unique and totally
   ordered with no per-shard state: each shard's local timestamp
   order must be the restriction of one global order. *)

let prop_timestamp_shard_order_composes =
  Q.Test.make ~name:"per-shard timestamp orders compose globally" ~count:300
    Q.(
      list_of_size
        Gen.(int_range 1 100)
        (triple (int_bound 10_000) (int_bound 31) (int_bound 3)))
    (fun entries ->
      (* (time, client, shard): distinct (time, client) pairs must
         stamp distinct global timestamps, and each shard group —
         seeing only its own subset — must sort it the same way the
         global order does. *)
      let dedup =
        List.sort_uniq
          (fun (t, c, _) (t', c', _) -> compare (t, c) (t', c'))
          entries
      in
      let stamps =
        List.map
          (fun (t, c, s) -> (ts (float_of_int t) c, s))
          dedup
      in
      let global =
        List.sort (fun (a, _) (b, _) -> Timestamp.compare a b) stamps
      in
      let rec strictly_increasing = function
        | (a, _) :: ((b, _) :: _ as tl) ->
            Timestamp.compare a b < 0 && strictly_increasing tl
        | _ -> true
      in
      strictly_increasing global
      && List.for_all
           (fun s ->
             let sub =
               List.filter_map
                 (fun (stamp, s') -> if s' = s then Some stamp else None)
                 global
             in
             List.sort Timestamp.compare sub = sub)
           [ 0; 1; 2; 3 ])

let prop_tid_unique_across_clients =
  Q.Test.make ~name:"tids unique across shard-group clients" ~count:300
    Q.(list (pair (int_bound 10_000) (int_bound 63)))
    (fun pairs ->
      let uniq = List.sort_uniq compare pairs in
      let tids =
        List.map
          (fun (seq, client_id) -> Timestamp.Tid.make ~seq ~client_id)
          uniq
      in
      let sorted = List.sort Timestamp.Tid.compare tids in
      let rec pairwise_distinct = function
        | a :: (b :: _ as tl) ->
            (not (Timestamp.Tid.equal a b)) && pairwise_distinct tl
        | _ -> true
      in
      List.length sorted = List.length uniq && pairwise_distinct sorted)

let prop_tid_hash_steers_cores =
  Q.Test.make ~name:"Tid.hash core steering: stable, in range" ~count:500
    Q.(pair (pair int int) (int_range 1 8))
    (fun ((seq, client_id), cores) ->
      (* Every shard group partitions its trecord by
         [Tid.hash tid mod cores]; the steer must be non-negative, in
         range, and a pure function of the tid's fields so replicas
         of every group agree on a cross-shard transaction's core. *)
      let t = Timestamp.Tid.make ~seq ~client_id in
      let rebuilt = Timestamp.Tid.make ~seq ~client_id in
      let h = Timestamp.Tid.hash t in
      h >= 0
      && h mod cores >= 0
      && h mod cores < cores
      && Timestamp.Tid.hash rebuilt = h
      && Timestamp.Tid.equal t rebuilt)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      Q.Test.make ~name:"sequential RMWs all commit serializably" ~count:300 arb_plan
        prop_occ_serializable;
      Q.Test.make ~name:"pending validations never conflict" ~count:300 arb_plan
        prop_occ_no_conflicting_commits;
      Q.Test.make ~name:"abort leaves no trace" ~count:300 arb_plan
        prop_occ_abort_is_clean;
      Q.Test.make ~name:"epoch merge emits only final records" ~count:300 arb_reports
        prop_merge_all_final;
      Q.Test.make ~name:"epoch merge respects reported outcomes" ~count:300
        (Q.make Q.Gen.(gen_reports >>= fun r -> if consistent_reports r then return r else return [
          { Epoch.replica = 0; records = [] }; { Epoch.replica = 1; records = [] } ]))
        prop_merge_respects_final_outcomes;
      Q.Test.make ~name:"recovery choose is total" ~count:300 arb_replies
        prop_choose_total;
      Q.Test.make ~name:"recovery choose respects finals" ~count:300 arb_replies
        prop_choose_respects_finals;
      Q.Test.make ~name:"checker accepts serial histories" ~count:300 arb_plan
        prop_checker_accepts_generated_serial;
      prop_zipf_in_range;
      prop_heap_sorts;
      prop_stats_merge;
      prop_timestamp_shard_order_composes;
      prop_tid_unique_across_clients;
      prop_tid_hash_steers_cores;
    ]

let () =
  (* Run the whole property matrix with the lock-discipline checker
     armed: any unguarded vstore/trecord access a shrunk case finds
     fails loudly instead of racing silently. *)
  Mk_check.Owner.enable ();
  Alcotest.run "props" [ ("qcheck", qtests) ]
