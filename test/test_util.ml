(* Unit tests for the utility layer: RNG, heap, stats, histogram,
   tables. *)

module Rng = Mk_util.Rng
module Heap = Mk_util.Heap
module Stats = Mk_util.Stats
module Histogram = Mk_util.Histogram
module Table = Mk_util.Table

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create ~seed:3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_uniform_range_and_mean () =
  let rng = Rng.create ~seed:5 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let u = Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0);
    sum := !sum +. u
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:11 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 c1 = Rng.bits64 c2 then incr same
  done;
  Alcotest.(check int) "children differ" 0 !same

let test_rng_copy_replays () =
  let rng = Rng.create ~seed:13 in
  ignore (Rng.bits64 rng);
  let snap = Rng.copy rng in
  let a = Rng.bits64 rng in
  let b = Rng.bits64 snap in
  Alcotest.(check int64) "copy replays" a b

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:17 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:4.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (abs_float (mean -. 4.0) < 0.1)

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:19 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 100 (fun i -> i)) sorted;
  Alcotest.(check bool) "actually permuted" true (a <> Array.init 100 (fun i -> i))

(* --- Heap --- *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  let rng = Rng.create ~seed:23 in
  let n = 1000 in
  for _ = 1 to n do
    Heap.push h (Rng.int rng 10_000)
  done;
  Alcotest.(check int) "length" n (Heap.length h);
  let prev = ref min_int in
  for _ = 1 to n do
    let v = Heap.pop_exn h in
    Alcotest.(check bool) "non-decreasing" true (v >= !prev);
    prev := v
  done;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_peek_pop () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Heap.push h 5;
  Heap.push h 3;
  Alcotest.(check (option int)) "peek min" (Some 3) (Heap.peek h);
  Alcotest.(check (option int)) "pop min" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "then next" (Some 5) (Heap.pop h)

let test_heap_pop_exn_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_clear_and_to_list () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 4; 1; 3 ];
  Alcotest.(check int) "to_list size" 3 (List.length (Heap.to_list h));
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

(* --- Stats --- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s);
  (* Sample variance of 1..4 = 5/3. *)
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (Stats.variance s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0; 5.0 ];
  List.iter (Stats.add whole) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count m);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.(check (float 1e-9)) "variance" (Stats.variance whole) (Stats.variance m)

let test_stats_percentile () =
  let samples = Array.init 101 (fun i -> float_of_int i) in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile samples 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile samples 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile samples 100.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stats.percentile [||] 50.0))

(* --- Histogram --- *)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let p50 = Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 near 500" true (p50 > 450.0 && p50 < 550.0);
  let p99 = Histogram.percentile h 99.0 in
  Alcotest.(check bool) "p99 near 990" true (p99 > 900.0 && p99 < 1080.0)

let test_histogram_mean_and_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 10.0;
  Histogram.add b 30.0;
  Histogram.merge_into ~dst:a ~src:b;
  Alcotest.(check int) "merged count" 2 (Histogram.count a);
  Alcotest.(check (float 1e-9)) "merged mean" 20.0 (Histogram.mean a)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check (float 1e-9)) "empty percentile is 0" 0.0
    (Histogram.percentile h 50.0);
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Histogram.mean h))

let test_histogram_merge_pure () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 10.0;
  Histogram.add a 10.0;
  Histogram.add b 30.0;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" 3 (Histogram.count m);
  Alcotest.(check (float 1e-6)) "merged mean" (50.0 /. 3.0) (Histogram.mean m);
  (* Inputs untouched. *)
  Alcotest.(check int) "a unchanged" 2 (Histogram.count a);
  Alcotest.(check int) "b unchanged" 1 (Histogram.count b)

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "line count" 5 (List.length lines) (* header, sep, 2 rows, trailing *);
  Alcotest.(check bool) "keeps order" true
    (match lines with
    | _ :: _ :: r1 :: r2 :: _ ->
        String.length r1 > 0 && r1.[0] = '1' && String.length r2 > 0 && r2.[0] = '3'
    | _ -> false)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "uniform range and mean" `Quick test_rng_uniform_range_and_mean;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy_replays;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
          Alcotest.test_case "pop_exn on empty" `Quick test_heap_pop_exn_empty;
          Alcotest.test_case "clear and to_list" `Quick test_heap_clear_and_to_list;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/var/min/max" `Quick test_stats_basic;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "mean and merge" `Quick test_histogram_mean_and_merge;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "pure merge" `Quick test_histogram_merge_pure;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
    ]
