(* The observability subsystem: metrics registry, span tracer against
   a scripted clock, and the Chrome-trace exporter — including the
   determinism guarantee (same seed => byte-identical trace). *)

module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Histogram = Mk_util.Histogram
module Registry = Mk_obs.Registry
module Span = Mk_obs.Span
module Tracer = Mk_obs.Tracer
module Obs = Mk_obs.Obs
module S = Mk_meerkat.Sim_system

(* --- Registry --- *)

let test_registry_counters () =
  let r = Registry.create () in
  let c = Registry.counter r "txn.committed" in
  Alcotest.(check int) "fresh counter is 0" 0 (Registry.value c);
  Registry.incr c;
  Registry.incr c;
  Registry.add c 3;
  Alcotest.(check int) "incr+add" 5 (Registry.value c);
  (* Find-or-create: same name, same instrument. *)
  let c' = Registry.counter r "txn.committed" in
  Registry.incr c';
  Alcotest.(check int) "same handle by name" 6 (Registry.value c);
  let g = Registry.gauge r "cores.busy" in
  Registry.set g 0.75;
  Alcotest.(check (float 1e-9)) "gauge" 0.75 (Registry.gauge_value g)

let test_registry_snapshot_sorted () =
  let r = Registry.create () in
  Registry.incr (Registry.counter r "zeta");
  Registry.incr (Registry.counter r "alpha");
  Registry.incr (Registry.counter r "mid");
  let snap = Registry.snapshot r in
  Alcotest.(check (list string)) "sorted by name"
    [ "alpha"; "mid"; "zeta" ]
    (List.map fst snap.Registry.counters)

let test_summarize_empty_histogram () =
  let h = Histogram.create () in
  (* Satellite guarantee: empty percentiles are 0, never NaN. *)
  Alcotest.(check (float 1e-9)) "empty p50" 0.0 (Histogram.percentile h 50.0);
  let s = Registry.summarize h in
  Alcotest.(check int) "count" 0 s.Registry.count;
  Alcotest.(check (float 1e-9)) "mean" 0.0 s.Registry.mean;
  Alcotest.(check (float 1e-9)) "p50" 0.0 s.Registry.p50;
  Alcotest.(check (float 1e-9)) "p99" 0.0 s.Registry.p99

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  for i = 1 to 10 do
    Histogram.add a (float_of_int i)
  done;
  for i = 11 to 20 do
    Histogram.add b (float_of_int i)
  done;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" 20 (Histogram.count m);
  Alcotest.(check int) "inputs untouched" 10 (Histogram.count a);
  let p50 = Histogram.percentile m 50.0 in
  Alcotest.(check bool) "merged p50 between inputs" true
    (p50 > Histogram.percentile a 50.0 && p50 < Histogram.percentile b 50.0)

(* --- Spans against a scripted clock --- *)

let scripted () =
  let t = ref 0.0 in
  (t, fun () -> !t)

let test_spans_feed_phase_histograms () =
  let clock_state, clock = scripted () in
  let obs = Obs.create ~clock () in
  clock_state := 10.0;
  Obs.span obs Span.Validate ~start:4.0 ();
  (* finish defaults to now *)
  Obs.span obs Span.Validate ~start:0.0 ~finish:2.0 ();
  Obs.span obs Span.Fast_quorum ~start:1.0 ~finish:9.0 ();
  let v = Registry.summarize (Obs.phase_histogram obs Span.Validate) in
  Alcotest.(check int) "validate count" 2 v.Registry.count;
  Alcotest.(check (float 0.3)) "validate mean" 4.0 v.Registry.mean;
  let summary = Obs.phase_summary obs in
  Alcotest.(check int) "one entry per kind" Span.count (List.length summary);
  let fq = List.assoc Span.Fast_quorum summary in
  Alcotest.(check int) "fast-quorum count" 1 fq.Registry.count;
  Alcotest.(check int) "empty phase present"
    0 (List.assoc Span.Slow_accept summary).Registry.count;
  Obs.reset_phases obs;
  Alcotest.(check int) "reset" 0
    (Registry.summarize (Obs.phase_histogram obs Span.Validate)).Registry.count

let test_wire_counters () =
  (* The cluster backend's socket shim accounts every frame here;
     meerkat_node --metrics and the node's exit stats read these. *)
  let _, clock = scripted () in
  let obs = Obs.create ~clock () in
  List.iter
    (fun n ->
      Alcotest.(check int) (n ^ " starts at 0") 0 (Obs.counter_value obs n))
    [
      "wire.msgs_tx"; "wire.msgs_rx"; "wire.bytes_tx"; "wire.bytes_rx";
      "wire.decode_errors";
    ];
  Obs.note_wire_tx obs ~bytes:40;
  Obs.note_wire_tx obs ~bytes:60;
  Obs.note_wire_rx obs ~bytes:25;
  Obs.note_wire_decode_error obs;
  Alcotest.(check int) "msgs_tx" 2 (Obs.counter_value obs "wire.msgs_tx");
  Alcotest.(check int) "bytes_tx" 100 (Obs.counter_value obs "wire.bytes_tx");
  Alcotest.(check int) "msgs_rx" 1 (Obs.counter_value obs "wire.msgs_rx");
  Alcotest.(check int) "bytes_rx" 25 (Obs.counter_value obs "wire.bytes_rx");
  Alcotest.(check int) "decode_errors" 1
    (Obs.counter_value obs "wire.decode_errors")

let test_tracer_nesting () =
  let clock_state, clock = scripted () in
  let tr = Tracer.create ~enabled:true ~clock () in
  Tracer.begin_span tr ~name:"outer" ~pid:1 ~tid:0 ();
  clock_state := 5.0;
  Tracer.begin_span tr ~name:"inner" ~pid:1 ~tid:0 ();
  clock_state := 7.0;
  Tracer.end_span tr ~name:"inner" ~pid:1 ~tid:0 ();
  clock_state := 9.0;
  Tracer.end_span tr ~name:"outer" ~pid:1 ~tid:0 ();
  let evs = Tracer.events tr in
  Alcotest.(check int) "four events" 4 (List.length evs);
  let shape =
    List.map
      (fun e ->
        ( e.Tracer.name,
          e.Tracer.ts,
          match e.Tracer.phase with
          | Tracer.Begin -> "B"
          | Tracer.End -> "E"
          | _ -> "?" ))
      evs
  in
  Alcotest.(check bool) "B/E nest by timestamps" true
    (shape
    = [
        ("outer", 0.0, "B"); ("inner", 5.0, "B"); ("inner", 7.0, "E");
        ("outer", 9.0, "E");
      ])

let test_disabled_tracer_records_nothing () =
  let _, clock = scripted () in
  let obs = Obs.create ~clock () in
  Obs.span obs Span.Validate ~start:0.0 ~finish:1.0 ();
  Obs.core_busy obs ~pid:1 ~tid:0 ~start:0.0 ~finish:1.0;
  Alcotest.(check int) "no trace events" 0 (Tracer.length (Obs.tracer obs));
  (* ... but the phase histogram still filled. *)
  Alcotest.(check int) "histogram still live" 1
    (Registry.summarize (Obs.phase_histogram obs Span.Validate)).Registry.count

(* --- End-to-end: traced Meerkat run --- *)

(* A lossy run with a mid-run crash exercises every span kind: reads
   (Execute/Validate), fast path before the crash, slow path after,
   write-backs, and drop-driven retransmissions. *)
let traced_run ~seed =
  let engine = Engine.create ~seed () in
  let obs = Obs.create ~trace:true ~clock:(fun () -> Engine.now engine) () in
  let cfg =
    {
      S.default_config with
      threads = 4;
      n_clients = 8;
      keys = 128;
      seed;
      transport = Transport.with_drop Transport.erpc 0.05;
    }
  in
  let sys = S.create ~obs engine cfg in
  let remaining = ref (8 * 12) in
  let rec loop c n =
    if n > 0 then
      let key = ((c * 31) + (n * 7)) mod 128 in
      S.submit sys ~client:c
        { Mk_model.System_intf.reads = [| key |]; writes = [| (key, n) |] }
        ~on_done:(fun ~committed:_ ->
          decr remaining;
          loop c (n - 1))
  in
  for c = 0 to 7 do
    loop c 12
  done;
  Engine.schedule engine ~delay:150.0 (fun () -> S.crash_replica sys 2);
  Engine.run ~max_events:20_000_000 engine;
  Alcotest.(check int) "all txns decided" 0 !remaining;
  obs

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec probe i = i + n <= m && (String.sub s i n = sub || probe (i + 1)) in
  probe 0

let test_trace_covers_all_phases () =
  let obs = traced_run ~seed:11 in
  let json = Obs.chrome_trace obs in
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Span.to_string kind ^ " present in trace")
        true
        (contains ~sub:(Printf.sprintf "%S" (Span.to_string kind)) json))
    Span.all

let test_trace_deterministic () =
  let a = Obs.chrome_trace (traced_run ~seed:11) in
  let b = Obs.chrome_trace (traced_run ~seed:11) in
  Alcotest.(check bool) "same seed, byte-identical trace" true (a = b);
  let c = Obs.chrome_trace (traced_run ~seed:12) in
  Alcotest.(check bool) "different seed, different trace" true (a <> c)

(* --- Exported JSON is well-formed --- *)

(* A tiny JSON syntax checker — no JSON library in the build, and the
   exporter hand-rolls its output, so parse it back to be sure. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then advance () else fail () in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail ()
  and literal lit =
    String.iter (fun c -> if peek () = Some c then advance () else fail ()) lit
  and number () =
    let numchar = function
      | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
      | _ -> false
    in
    let start = !pos in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail ()
  and string_lit () =
    expect '"';
    let rec body () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' -> advance (); advance (); body ()
      | Some _ -> advance (); body ()
      | None -> fail ()
    in
    body ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); elems ()
        | Some ']' -> advance ()
        | _ -> fail ()
      in
      elems ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_trace_is_valid_json () =
  Alcotest.(check bool) "checker accepts JSON" true
    (json_valid {|{"a": [1, -2.5e3, "x\"y", true, null], "b": {}}|});
  Alcotest.(check bool) "checker rejects garbage" false (json_valid {|{"a": }|});
  Alcotest.(check bool) "checker rejects trailing" false (json_valid "{} x");
  let json = Obs.chrome_trace (traced_run ~seed:3) in
  Alcotest.(check bool) "non-trivial trace" true (String.length json > 1000);
  Alcotest.(check bool) "chrome trace parses" true (json_valid json)

let test_metrics_dump_mentions_counters () =
  let obs = traced_run ~seed:4 in
  let dump = Obs.metrics_dump obs in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in dump") true (contains ~sub:name dump))
    [ "txn.committed"; "txn.fast_path"; "net.sent" ]

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_registry_counters;
          Alcotest.test_case "snapshot sorted" `Quick test_registry_snapshot_sorted;
          Alcotest.test_case "empty histogram summary" `Quick
            test_summarize_empty_histogram;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "wire counters" `Quick test_wire_counters;
        ] );
      ( "spans",
        [
          Alcotest.test_case "phase histograms" `Quick
            test_spans_feed_phase_histograms;
          Alcotest.test_case "tracer nesting" `Quick test_tracer_nesting;
          Alcotest.test_case "disabled tracer no-ops" `Quick
            test_disabled_tracer_records_nothing;
        ] );
      ( "trace",
        [
          Alcotest.test_case "covers all six phases" `Quick
            test_trace_covers_all_phases;
          Alcotest.test_case "deterministic across runs" `Quick
            test_trace_deterministic;
          Alcotest.test_case "valid JSON" `Quick test_trace_is_valid_json;
          Alcotest.test_case "metrics dump" `Quick
            test_metrics_dump_mentions_counters;
        ] );
    ]
