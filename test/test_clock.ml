(* Unit tests for timestamps, tids and loosely synchronized clocks. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Mk_clock.Timestamp.Tid
module Sync_clock = Mk_clock.Sync_clock

let ts time client_id = Timestamp.make ~time ~client_id

let test_timestamp_order () =
  Alcotest.(check bool) "time dominates" true
    (Timestamp.compare (ts 1.0 9) (ts 2.0 1) < 0);
  Alcotest.(check bool) "client id breaks ties" true
    (Timestamp.compare (ts 1.0 1) (ts 1.0 2) < 0);
  Alcotest.(check bool) "equal" true (Timestamp.equal (ts 1.0 1) (ts 1.0 1));
  Alcotest.(check bool) "total order antisymmetric" true
    (Timestamp.compare (ts 2.0 1) (ts 1.0 9) > 0)

let test_timestamp_extremes () =
  Alcotest.(check bool) "zero below all" true
    (Timestamp.compare Timestamp.zero (ts (-1e18) min_int) < 0
    || Timestamp.equal Timestamp.zero (ts (-1e18) min_int));
  Alcotest.(check bool) "zero < normal" true
    (Timestamp.compare Timestamp.zero (ts 0.0 0) < 0);
  Alcotest.(check bool) "infinity above all" true
    (Timestamp.compare Timestamp.infinity (ts 1e18 max_int) > 0)

let test_timestamp_set_min_max () =
  let set =
    Timestamp.Set.of_list [ ts 3.0 1; ts 1.0 2; ts 2.0 1; ts 1.0 1 ]
  in
  Alcotest.(check bool) "min" true (Timestamp.equal (Timestamp.Set.min_elt set) (ts 1.0 1));
  Alcotest.(check bool) "max" true (Timestamp.equal (Timestamp.Set.max_elt set) (ts 3.0 1))

let test_timestamp_render () =
  Alcotest.(check string) "pp" "1.500@c3" (Timestamp.to_string (ts 1.5 3))

let test_tid_identity () =
  let a = Tid.make ~seq:1 ~client_id:2 in
  let b = Tid.make ~seq:1 ~client_id:2 in
  let c = Tid.make ~seq:2 ~client_id:2 in
  Alcotest.(check bool) "equal" true (Tid.equal a b);
  Alcotest.(check bool) "not equal" false (Tid.equal a c);
  Alcotest.(check int) "hash stable" (Tid.hash a) (Tid.hash b);
  Alcotest.(check bool) "ordered by client then seq" true (Tid.compare a c < 0);
  Alcotest.(check string) "pp" "t2.1" (Tid.to_string a)

let test_tid_hash_nonnegative () =
  (* Regression: the old [seq * prime + client_id] overflowed for
     large operands and a negative [hash mod partitions] crashed
     trecord steering. The mixed hash must stay non-negative on the
     whole input range. *)
  let extremes = [ 0; 1; 12345; max_int / 2; max_int - 1; max_int ] in
  List.iter
    (fun seq ->
      List.iter
        (fun client_id ->
          let h = Tid.hash (Tid.make ~seq ~client_id) in
          Alcotest.(check bool)
            (Printf.sprintf "hash >= 0 for seq=%d client=%d" seq client_id)
            true (h >= 0);
          Alcotest.(check bool) "in partition range" true (h mod 80 >= 0))
        extremes)
    extremes;
  (* and it still discriminates: both fields matter *)
  let base = Tid.hash (Tid.make ~seq:1 ~client_id:1) in
  Alcotest.(check bool) "seq mixed in" true
    (base <> Tid.hash (Tid.make ~seq:2 ~client_id:1));
  Alcotest.(check bool) "client mixed in" true
    (base <> Tid.hash (Tid.make ~seq:1 ~client_id:2))

let test_sync_clock_perfect () =
  Alcotest.(check (float 1e-9)) "identity" 123.0
    (Sync_clock.read Sync_clock.perfect ~now:123.0)

let test_sync_clock_offset_drift () =
  let c = Sync_clock.create ~offset:10.0 ~drift:0.01 in
  Alcotest.(check (float 1e-9)) "offset+drift" (10.0 +. 101.0)
    (Sync_clock.read c ~now:100.0);
  Alcotest.(check (float 1e-9)) "offset accessor" 10.0 (Sync_clock.offset c);
  Alcotest.(check (float 1e-9)) "drift accessor" 0.01 (Sync_clock.drift c)

let test_sync_clock_monotone () =
  let c = Sync_clock.create ~offset:(-50.0) ~drift:(-0.5) in
  let prev = ref neg_infinity in
  for i = 0 to 1000 do
    let v = Sync_clock.read c ~now:(float_of_int i) in
    Alcotest.(check bool) "monotone for drift > -1" true (v > !prev);
    prev := v
  done

let test_sync_clock_random_bounds () =
  let rng = Mk_util.Rng.create ~seed:4 in
  for _ = 1 to 100 do
    let c = Sync_clock.random rng ~max_offset:5.0 ~max_drift:0.001 in
    Alcotest.(check bool) "offset bounded" true (abs_float (Sync_clock.offset c) <= 5.0);
    Alcotest.(check bool) "drift bounded" true (abs_float (Sync_clock.drift c) <= 0.001)
  done

let () =
  Alcotest.run "clock"
    [
      ( "timestamp",
        [
          Alcotest.test_case "lexicographic order" `Quick test_timestamp_order;
          Alcotest.test_case "zero and infinity" `Quick test_timestamp_extremes;
          Alcotest.test_case "set min/max" `Quick test_timestamp_set_min_max;
          Alcotest.test_case "rendering" `Quick test_timestamp_render;
        ] );
      ( "tid",
        [
          Alcotest.test_case "identity and order" `Quick test_tid_identity;
          Alcotest.test_case "hash never negative" `Quick test_tid_hash_nonnegative;
        ] );
      ( "sync-clock",
        [
          Alcotest.test_case "perfect" `Quick test_sync_clock_perfect;
          Alcotest.test_case "offset and drift" `Quick test_sync_clock_offset_drift;
          Alcotest.test_case "monotone" `Quick test_sync_clock_monotone;
          Alcotest.test_case "random bounds" `Quick test_sync_clock_random_bounds;
        ] );
    ]
