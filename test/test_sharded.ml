(* Distributed transactions across sharded Meerkat groups
   (DESIGN.md §13, paper §5.2.4) — the sim backend of lib/shard. *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Cluster = Mk_cluster.Cluster
module Router = Mk_shard.Router
module Sharded = Mk_systems.Sharded_sim
module Checker = Mk_harness.Checker

let base_cfg =
  { Cluster.default_config with threads = 2; n_clients = 8; keys = 64; seed = 3 }

let make ?(shards = 2) ?(cfg = base_cfg) () =
  let engine = Engine.create ~seed:cfg.Cluster.seed () in
  (engine, Sharded.create engine ~shards cfg)

let drive engine sys ~clients ~per_client ~request =
  let outcomes = ref [] in
  let rec loop c remaining =
    if remaining > 0 then
      Sharded.submit sys ~client:c (request c remaining) ~on_done:(fun ~committed ->
          outcomes := committed :: !outcomes;
          loop c (remaining - 1))
  in
  for c = 0 to clients - 1 do
    loop c per_client
  done;
  Engine.run ~max_events:20_000_000 engine;
  !outcomes

let check_serializable label sys =
  (match Checker.check (Sharded.history sys) with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "%s: acked history not serializable: %a" label
        Checker.pp_violation v);
  match Checker.check (Sharded.trecord_history sys) with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "%s: trecord history not serializable: %a" label
        Checker.pp_violation v

let test_key_ownership () =
  let _, sys = make ~shards:3 () in
  let r = Sharded.router sys in
  Alcotest.(check int) "shards" 3 (Sharded.shards sys);
  Alcotest.(check int) "key 4 owner" 1 (Router.shard_of_key r 4);
  Alcotest.(check int) "key 6 owner" 0 (Router.shard_of_key r 6)

let test_single_shard_txn () =
  let engine, sys = make () in
  let result = ref None in
  (* Keys 0 and 2 both live in shard 0. *)
  Sharded.submit sys ~client:0
    { Intf.reads = [| 0; 2 |]; writes = [| (0, 5) |] }
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "committed" (Some true) !result;
  Alcotest.(check (option int)) "applied" (Some 5)
    (Sharded.read_committed sys ~replica:0 ~key:0);
  check_serializable "single-shard" sys

let test_cross_shard_txn () =
  let engine, sys = make () in
  let result = ref None in
  (* Keys 0 (shard 0) and 1 (shard 1): a genuinely distributed
     transaction. *)
  Sharded.submit sys ~client:0
    { Intf.reads = [| 0; 1 |]; writes = [| (0, 10); (1, 11) |] }
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "committed" (Some true) !result;
  (* Both shards applied their half, on every replica. *)
  for replica = 0 to 2 do
    Alcotest.(check (option int)) "shard 0 half" (Some 10)
      (Sharded.read_committed sys ~replica ~key:0);
    Alcotest.(check (option int)) "shard 1 half" (Some 11)
      (Sharded.read_committed sys ~replica ~key:1)
  done;
  check_serializable "cross-shard" sys

let test_atomicity_across_shards () =
  (* Many racing cross-shard transactions, each writing the SAME value
     tag to one key in shard 0 and one key in shard 1. Atomicity
     means: every tid present in both groups' trecords has the same
     final status in both. *)
  let cfg = { base_cfg with keys = 4; n_clients = 8 } in
  let engine, sys = make ~cfg () in
  ignore
    (drive engine sys ~clients:8 ~per_client:20 ~request:(fun c i ->
         let tag = (c * 1000) + i in
         (* keys 0/2 are shard 0; 1/3 shard 1 *)
         let k0 = if (c + i) mod 2 = 0 then 0 else 2 in
         let k1 = if (c + i) mod 3 = 0 then 1 else 3 in
         { Intf.reads = [| k0; k1 |]; writes = [| (k0, tag); (k1, tag) |] }));
  let module Replica = Mk_meerkat.Replica in
  let module Trecord = Mk_storage.Trecord in
  let module Txn = Mk_storage.Txn in
  let status_table shard =
    let table = Hashtbl.create 256 in
    Array.iter
      (fun r ->
        List.iter
          (fun (_, (e : Trecord.entry)) ->
            if Txn.is_final e.status then
              Hashtbl.replace table e.txn.Txn.tid e.status)
          (Trecord.entries (Replica.trecord r)))
      (Mk_meerkat.Sim_system.replicas (Sharded.group sys shard));
    table
  in
  let t0 = status_table 0 and t1 = status_table 1 in
  let compared = ref 0 in
  Hashtbl.iter
    (fun tid status0 ->
      match Hashtbl.find_opt t1 tid with
      | Some status1 ->
          incr compared;
          Alcotest.(check bool)
            (Format.asprintf "tid %a same fate" Mk_clock.Timestamp.Tid.pp tid)
            true (status0 = status1)
      | None -> ())
    t0;
  Alcotest.(check bool) "cross-shard txns compared" true (!compared > 50);
  check_serializable "atomicity" sys

let test_contention_aborts_and_progress () =
  let cfg = { base_cfg with keys = 4 } in
  let engine, sys = make ~cfg () in
  let outcomes =
    drive engine sys ~clients:8 ~per_client:20 ~request:(fun c i ->
        let k = (c + i) mod 4 in
        { Intf.reads = [| k |]; writes = [| (k, i) |] })
  in
  Alcotest.(check int) "all decided" 160 (List.length outcomes);
  let counters = Sharded.counters sys in
  Alcotest.(check int) "accounting adds up" 160
    (counters.Intf.committed + counters.Intf.aborted);
  check_serializable "contention" sys

let test_interactive_cross_shard_conservation () =
  (* Shared counters on both shards, incremented together by an
     interactive cross-shard transaction: after the dust settles the
     two totals must be equal on every replica. *)
  let cfg = { base_cfg with keys = 4; n_clients = 6 } in
  let engine, sys = make ~cfg () in
  let commits = ref 0 in
  let rec bump c remaining =
    if remaining > 0 then
      Sharded.submit_interactive sys ~client:c ~reads:[| 0; 1 |]
        ~compute:(fun values -> [| (0, values.(0) + 1); (1, values.(1) + 1) |])
        ~on_done:(fun ~committed ->
          if committed then begin
            incr commits;
            bump c (remaining - 1)
          end
          else bump c remaining)
  in
  for c = 0 to 5 do
    bump c 8
  done;
  Engine.run ~max_events:20_000_000 engine;
  Alcotest.(check int) "all committed eventually" 48 !commits;
  for replica = 0 to 2 do
    Alcotest.(check (option int)) "shard-0 counter" (Some 48)
      (Sharded.read_committed sys ~replica ~key:0);
    Alcotest.(check (option int)) "shard-1 counter" (Some 48)
      (Sharded.read_committed sys ~replica ~key:1)
  done;
  check_serializable "conservation" sys

let test_many_shards () =
  let engine, sys = make ~shards:4 ~cfg:{ base_cfg with keys = 64 } () in
  let result = ref None in
  (* Touch all four shards in one transaction. *)
  Sharded.submit sys ~client:0
    { Intf.reads = [| 0; 1; 2; 3 |]; writes = [| (0, 1); (1, 1); (2, 1); (3, 1) |] }
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "4-shard txn commits" (Some true) !result;
  for key = 0 to 3 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" key)
      (Some 1)
      (Sharded.read_committed sys ~replica:1 ~key)
  done;
  check_serializable "many shards" sys

let test_range_policy () =
  (* Range placement: the first 32 keys on shard 0, the rest on
     shard 1; a [0, 40] transaction is still atomic. *)
  let engine = Engine.create ~seed:7 () in
  let sys =
    Sharded.create engine ~policy:Router.Range ~shards:2 base_cfg
  in
  let r = Sharded.router sys in
  Alcotest.(check int) "key 0 owner" 0 (Router.shard_of_key r 0);
  Alcotest.(check int) "key 40 owner" 1 (Router.shard_of_key r 40);
  let result = ref None in
  Sharded.submit sys ~client:0
    { Intf.reads = [| 0; 40 |]; writes = [| (0, 3); (40, 4) |] }
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "committed" (Some true) !result;
  Alcotest.(check (option int)) "shard 0 half" (Some 3)
    (Sharded.read_committed sys ~replica:0 ~key:0);
  Alcotest.(check (option int)) "shard 1 half" (Some 4)
    (Sharded.read_committed sys ~replica:0 ~key:40);
  check_serializable "range policy" sys

let test_shard_crash_others_commit () =
  (* Crash one replica of shard 0 mid-run: shard 0 degrades to its
     slow path while shard 1, an independent failure domain, keeps
     committing; the merged history stays serializable. *)
  let cfg = { base_cfg with keys = 8; n_clients = 4 } in
  let engine, sys = make ~cfg () in
  Mk_meerkat.Sim_system.crash_replica (Sharded.group sys 0) 2;
  let outcomes =
    drive engine sys ~clients:4 ~per_client:10 ~request:(fun c i ->
        (* Even keys: shard 0 (degraded); odd keys: shard 1. *)
        let k = ((c + i) mod 4 * 2) + (i mod 2) in
        { Intf.reads = [| k |]; writes = [| (k, (c * 100) + i) |] })
  in
  Alcotest.(check int) "all decided despite the crash" 40 (List.length outcomes);
  Alcotest.(check bool) "some committed" true (List.exists (fun c -> c) outcomes);
  check_serializable "shard crash" sys

let () =
  Alcotest.run "sharded"
    [
      ( "distributed-txns",
        [
          Alcotest.test_case "key ownership" `Quick test_key_ownership;
          Alcotest.test_case "single-shard txn" `Quick test_single_shard_txn;
          Alcotest.test_case "cross-shard txn" `Quick test_cross_shard_txn;
          Alcotest.test_case "atomicity across shards" `Quick
            test_atomicity_across_shards;
          Alcotest.test_case "contention and accounting" `Quick
            test_contention_aborts_and_progress;
          Alcotest.test_case "four shards" `Quick test_many_shards;
          Alcotest.test_case "interactive cross-shard conservation" `Quick
            test_interactive_cross_shard_conservation;
          Alcotest.test_case "range policy" `Quick test_range_policy;
          Alcotest.test_case "shard crash, others commit" `Quick
            test_shard_crash_others_commit;
        ] );
    ]
