(* The cross-process cluster backend, exercised in one process:
   cluster-config parsing, node lifecycle validation, and a real
   3-node UDP-loopback cluster — bind/create/launch three replicas,
   drive a closed-loop workload through the client driver, check the
   merged history serializable, and verify heartbeat-based failure
   detection when one node goes silent (DESIGN.md §11). *)

module Cluster_config = Mk_node.Cluster_config
module Node = Mk_node.Node
module Driver = Mk_node.Client_driver
module Shard_driver = Mk_node.Shard_driver
module Checker = Mk_harness.Checker
module Detector = Mk_meerkat.Detector
module Codec = Mk_wire.Codec
module Tid = Mk_clock.Timestamp.Tid

(* --- cluster config --- *)

let test_config_parse () =
  let text =
    "# deployment\n\nnode0 127.0.0.1:5000\nnode1 localhost:5001\n\
     node2 10.0.0.3:65535\n"
  in
  match Cluster_config.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok cfg ->
      Alcotest.(check int) "three nodes" 3 (Array.length cfg);
      Alcotest.(check string) "name" "node1" cfg.(1).Cluster_config.name;
      Alcotest.(check string) "host" "localhost" cfg.(1).Cluster_config.host;
      Alcotest.(check int) "port" 65535 cfg.(2).Cluster_config.port;
      Alcotest.(check (option int)) "find" (Some 2)
        (Cluster_config.find cfg "node2");
      Alcotest.(check (option int)) "find missing" None
        (Cluster_config.find cfg "node9")

let test_config_roundtrip () =
  let text = "a 127.0.0.1:1\nb ::1:2\nc host.example:3\n" in
  match Cluster_config.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok cfg -> (
      (* The host keeps everything before the last ':', so numeric
         IPv6 hosts survive the round trip. *)
      Alcotest.(check string) "ipv6 host" "::1" cfg.(1).Cluster_config.host;
      match Cluster_config.parse (Cluster_config.to_string cfg) with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok cfg' ->
          Alcotest.(check string) "canonical text round-trips"
            (Cluster_config.to_string cfg)
            (Cluster_config.to_string cfg'))

let expect_parse_error what text =
  match Cluster_config.parse text with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s accepted" what

let test_config_errors () =
  expect_parse_error "empty config" "# only comments\n\n";
  expect_parse_error "missing port" "node0 127.0.0.1\n";
  expect_parse_error "port zero" "node0 127.0.0.1:0\n";
  expect_parse_error "port overflow" "node0 127.0.0.1:70000\n";
  expect_parse_error "non-numeric port" "node0 127.0.0.1:abc\n";
  expect_parse_error "extra tokens" "node0 127.0.0.1:5000 extra\n";
  expect_parse_error "duplicate name" "n 127.0.0.1:1\nn 127.0.0.1:2\n";
  (* Errors carry the offending line number. *)
  match Cluster_config.parse "ok 127.0.0.1:1\nbad\n" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error e ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error mentions line 2: %S" e)
        true
        (contains e "line 2")

(* --- node lifecycle validation --- *)

let test_create_validates () =
  let expect_invalid what f =
    match f () with
    | _ -> Alcotest.failf "%s accepted" what
    | exception Invalid_argument _ -> ()
  in
  let with_bound f =
    match Node.bind () with
    | Error e -> Alcotest.failf "bind failed: %s" e
    | Ok b ->
        Alcotest.(check bool) "ephemeral port" true (Node.bound_port b > 0);
        f b
  in
  with_bound (fun b ->
      expect_invalid "zero cores" (fun () ->
          Node.create b { Node.default_config with Node.cores = 0 } ~n_replicas:3));
  with_bound (fun b ->
      expect_invalid "even replica count" (fun () ->
          Node.create b Node.default_config ~n_replicas:4));
  with_bound (fun b ->
      expect_invalid "me out of range" (fun () ->
          Node.create b { Node.default_config with Node.me = 3 } ~n_replicas:3))

let test_detector_cfg_scaling () =
  let cfg = Node.detector_cfg ~heartbeat_ms:10.0 in
  Alcotest.(check (float 1e-6)) "suspect after 6 missed heartbeats" 60_000.0
    cfg.Detector.heartbeat_timeout;
  Alcotest.(check bool) "pause tolerance above suspicion" true
    (cfg.Detector.pause_timeout > cfg.Detector.heartbeat_timeout)

(* --- a real 3-node cluster on UDP loopback --- *)

let bind_cluster n =
  let bound =
    Array.init n (fun i ->
        match Node.bind () with
        | Ok b -> b
        | Error e -> Alcotest.failf "bind node%d: %s" i e)
  in
  let cluster =
    Array.mapi
      (fun i b ->
        {
          Cluster_config.name = Printf.sprintf "node%d" i;
          host = "127.0.0.1";
          port = Node.bound_port b;
        })
      bound
  in
  (bound, cluster)

let launch_cluster ?(heartbeat_ms = 10.0) ?(shard = 0) ~keys bound cluster =
  let n = Array.length bound in
  Array.mapi
    (fun i b ->
      let cfg =
        {
          Node.default_config with
          Node.me = i;
          cores = 2;
          keys;
          shard;
          detector = Some (Node.detector_cfg ~heartbeat_ms);
        }
      in
      let node = Node.create b cfg ~n_replicas:n in
      (match Node.launch node ~cluster with
      | Ok () -> ()
      | Error e -> Alcotest.failf "launch node%d: %s" i e);
      node)
    bound

let test_cluster_serializable () =
  let keys = 64 in
  let bound, cluster = bind_cluster 3 in
  let nodes = launch_cluster ~keys bound cluster in
  let driver_cfg =
    {
      Driver.default_config with
      Driver.coordinators = 2;
      clients = 6;
      keys;
      txns_per_client = 15;
      seed = 11;
    }
  in
  let result =
    match Driver.run driver_cfg ~cluster with
    | Ok r -> r
    | Error e -> Alcotest.failf "driver: %s" e
  in
  (match Driver.shutdown ~cluster () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "shutdown: %s" e);
  let stats = Array.map Node.wait nodes in
  Alcotest.(check int) "every client got every answer" result.Driver.submitted
    result.Driver.acked;
  Alcotest.(check int) "90 transactions resolved" 90
    (result.Driver.committed_count + result.Driver.aborted);
  Alcotest.(check bool) "some commits" true (result.Driver.committed_count > 0);
  (match Checker.check result.Driver.committed with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "not serializable: %a" Checker.pp_violation v);
  Array.iter
    (fun (s : Node.stats) ->
      Alcotest.(check (list int))
        (Printf.sprintf "node%d suspects nobody" s.Node.me)
        [] s.Node.suspected;
      Alcotest.(check int)
        (Printf.sprintf "node%d clean wire" s.Node.me)
        0 s.Node.wire_decode_errors;
      Alcotest.(check bool)
        (Printf.sprintf "node%d validated" s.Node.me)
        true
        (s.Node.validations_ok > 0 && s.Node.wire_msgs_rx > 0
       && s.Node.wire_msgs_tx > 0))
    stats

let test_cluster_survives_hostile_frames () =
  (* Well-framed datagrams carrying out-of-range replica ids (hostile
     peer, misconfigured deployment, bit-flipped genuine frame) index
     detector and view-change arrays if taken at face value. They must
     be counted drops: the loop thread survives and the cluster still
     serves a real workload afterwards. *)
  let keys = 16 in
  let bound, cluster = bind_cluster 3 in
  let nodes = launch_cluster ~heartbeat_ms:10.0 ~keys bound cluster in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  let dst =
    Unix.ADDR_INET (Unix.inet_addr_loopback, cluster.(0).Cluster_config.port)
  in
  let raw s =
    ignore (Unix.sendto_substring sock s 0 (String.length s) [] dst : int)
  in
  let send msg = raw (Codec.encode msg) in
  let tid = Tid.make ~seq:1 ~client_id:1 in
  send (Codec.Heartbeat { from_ = 999; paused = false });
  send (Codec.Heartbeat { from_ = -1; paused = true });
  send
    (Codec.Vc_accept_reply { observer = 0; replica = 4096; tid; reply = `Accepted });
  send (Codec.Coord_reply { observer = 0; replica = -5; tid; reply = `Stale 3 });
  raw "MK not a frame at all";
  Unix.close sock;
  (* Let the loop thread eat the poison before real load arrives. *)
  Unix.sleepf 0.05;
  let driver_cfg =
    {
      Driver.default_config with
      Driver.coordinators = 1;
      clients = 3;
      keys;
      txns_per_client = 5;
      seed = 7;
    }
  in
  let result =
    match Driver.run driver_cfg ~cluster with
    | Ok r -> r
    | Error e -> Alcotest.failf "driver: %s" e
  in
  (match Driver.shutdown ~cluster () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "shutdown: %s" e);
  let stats = Array.map Node.wait nodes in
  Alcotest.(check int) "workload resolved after poison" 15
    (result.Driver.committed_count + result.Driver.aborted);
  (match Checker.check result.Driver.committed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "not serializable: %a" Checker.pp_violation v);
  (* 4 id-rejected frames + 1 garbage datagram; allow one UDP loss. *)
  Alcotest.(check bool) "poison counted as decode errors" true
    (stats.(0).Node.wire_decode_errors >= 4);
  Array.iter
    (fun (s : Node.stats) ->
      Alcotest.(check (list int))
        (Printf.sprintf "node%d suspects nobody" s.Node.me)
        [] s.Node.suspected)
    stats

let test_shim_counts_oversized_frames () =
  (* A frame bigger than one UDP datagram fails on every [sendto], so
     retransmission can never deliver it: the shim must drop it at
     flush time and count it under [wire.send_errors], not retry
     silently forever. *)
  let module Big = Mk_node.Shim.Make (struct
    type msg = int

    (* A frame of [n] filler bytes; decode consumes the rest of the
       datagram and reports its length. *)
    let encode_into ~scratch:_ ~out n = Buffer.add_string out (String.make n 'x')
    let decode_at s ~pos = Ok (String.length s - pos, String.length s)
  end) in
  match Big.bind () with
  | Error e -> Alcotest.failf "bind: %s" e
  | Ok net ->
      let obs = Mk_obs.Obs.create ~clock:(fun () -> 0.0) () in
      Big.set_obs net obs;
      let dst = Unix.ADDR_INET (Unix.inet_addr_loopback, Big.port net) in
      Big.send net ~dst 70_000;
      (* Encoding is deferred: the drop is detected when the outbox
         flushes, i.e. on the first poll. *)
      ignore (Big.poll net ~deliver:(fun ~src:_ _ -> ()) : int);
      Alcotest.(check int) "oversized frame counted" 1
        (Mk_obs.Obs.counter_value obs "wire.send_errors");
      Big.send net ~dst 100;
      let got = ref 0 in
      let deadline = Unix.gettimeofday () +. 2.0 in
      while !got = 0 && Unix.gettimeofday () < deadline do
        ignore (Big.poll net ~deliver:(fun ~src:_ len -> got := len) : int)
      done;
      Alcotest.(check int) "normal frame still flows" 100 !got;
      Alcotest.(check int) "no spurious send errors" 1
        (Mk_obs.Obs.counter_value obs "wire.send_errors");
      Big.stop net

(* --- two shard groups on UDP loopback (DESIGN.md §13) --- *)

let test_sharded_cluster_serializable () =
  (* Two independent 3-node fleets, one per shard group, driven by the
     cross-shard 2PC client driver. The merged global history must be
     serializable, cross-shard transactions must actually happen, and
     no node may see a frame stamped for the other group (distinct
     sockets — the stamp is belt-and-braces here, load-bearing when
     ports get crossed). *)
  let keys = 64 and shards = 2 in
  let router = Mk_shard.Router.create ~shards ~keys () in
  let fleets =
    Array.init shards (fun s ->
        let bound, cluster = bind_cluster 3 in
        let nodes =
          launch_cluster ~shard:s
            ~keys:(Mk_shard.Router.local_keys router ~shard:s)
            bound cluster
        in
        (cluster, nodes))
  in
  let clusters = Array.map fst fleets in
  let driver_cfg =
    {
      Shard_driver.default_config with
      Shard_driver.shards;
      coordinators = 2;
      clients = 6;
      keys;
      workload = Driver.Rmw_pair;
      cross = 0.5;
      txns_per_client = 12;
      seed = 11;
    }
  in
  let result =
    match Shard_driver.run driver_cfg ~clusters with
    | Ok r -> r
    | Error e -> Alcotest.failf "driver: %s" e
  in
  Array.iteri
    (fun s cluster ->
      match Driver.shutdown ~shard:s ~cluster () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "shutdown shard%d: %s" s e)
    clusters;
  let stats = Array.map (fun (_, nodes) -> Array.map Node.wait nodes) fleets in
  Alcotest.(check int) "72 transactions resolved" 72
    (result.Shard_driver.committed_count + result.Shard_driver.aborted);
  Alcotest.(check bool) "some commits" true
    (result.Shard_driver.committed_count > 0);
  Alcotest.(check bool) "some cross-shard commits" true
    (result.Shard_driver.cross_shard > 0);
  Alcotest.(check int) "driver saw no shard drops" 0
    result.Shard_driver.wire_shard_drops;
  (match Checker.check result.Shard_driver.committed with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "merged history not serializable: %a" Checker.pp_violation
        v);
  (* Per-shard sub-histories are serializable on their own, too. *)
  List.iter
    (fun (s, sub) ->
      match Checker.check sub with
      | Ok () -> ()
      | Error v ->
          Alcotest.failf "shard %d sub-history not serializable: %a" s
            Checker.pp_violation v)
    result.Shard_driver.sub_histories;
  Array.iteri
    (fun s fleet_stats ->
      Array.iter
        (fun (st : Node.stats) ->
          Alcotest.(check int)
            (Printf.sprintf "shard%d/node%d clean wire" s st.Node.me)
            0 st.Node.wire_decode_errors;
          Alcotest.(check int)
            (Printf.sprintf "shard%d/node%d no shard drops" s st.Node.me)
            0 st.Node.wire_shard_drops;
          Alcotest.(check bool)
            (Printf.sprintf "shard%d/node%d served traffic" s st.Node.me)
            true
            (st.Node.wire_msgs_rx > 0 && st.Node.wire_msgs_tx > 0))
        fleet_stats)
    stats

let test_shard_stamp_isolates_groups () =
  (* A node in group 1 receiving well-formed frames stamped for group
     0 must count them as shard drops and act on none of them — a
     heartbeat from the wrong group must not register liveness, and a
     Get must not be answered. *)
  let bound, cluster = bind_cluster 3 in
  let nodes = launch_cluster ~shard:1 ~keys:16 bound cluster in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  let dst =
    Unix.ADDR_INET (Unix.inet_addr_loopback, cluster.(0).Cluster_config.port)
  in
  let send ~shard msg =
    let s = Codec.encode_shard ~shard msg in
    ignore (Unix.sendto_substring sock s 0 (String.length s) [] dst : int)
  in
  send ~shard:0 (Codec.Heartbeat { from_ = 1; paused = false });
  send ~shard:0 (Codec.Get { coord = 0; slot = 0; seq = 1; key = 3 });
  send ~shard:5 (Codec.Heartbeat { from_ = 2; paused = false });
  Unix.close sock;
  Unix.sleepf 0.1;
  Array.iter Node.shutdown nodes;
  let stats = Array.map Node.wait nodes in
  Alcotest.(check bool) "mismatched stamps counted" true
    (stats.(0).Node.wire_shard_drops >= 3);
  Alcotest.(check int) "not decode errors" 0 stats.(0).Node.wire_decode_errors

let test_cluster_detects_silent_node () =
  (* No workload: stop one node's socket and heartbeats, wait past the
     detector timeout, and check both survivors latched the suspicion
     at shutdown. *)
  let bound, cluster = bind_cluster 3 in
  let nodes = launch_cluster ~heartbeat_ms:10.0 ~keys:16 bound cluster in
  (* Let a few heartbeat rounds establish liveness first. *)
  Unix.sleepf 0.15;
  Node.shutdown nodes.(2);
  let dead = Node.wait nodes.(2) in
  Alcotest.(check (list int)) "victim suspected nobody" [] dead.Node.suspected;
  (* 6 missed 10ms heartbeats plus scan slack. *)
  Unix.sleepf 0.5;
  Node.shutdown nodes.(0);
  Node.shutdown nodes.(1);
  let s0 = Node.wait nodes.(0) and s1 = Node.wait nodes.(1) in
  Alcotest.(check (list int)) "node0 suspects node2" [ 2 ] s0.Node.suspected;
  Alcotest.(check (list int)) "node1 suspects node2" [ 2 ] s1.Node.suspected

let () =
  Alcotest.run "node"
    [
      ( "config",
        [
          Alcotest.test_case "parse" `Quick test_config_parse;
          Alcotest.test_case "round-trip" `Quick test_config_roundtrip;
          Alcotest.test_case "errors" `Quick test_config_errors;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "detector scaling" `Quick
            test_detector_cfg_scaling;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "3-node loopback serializable" `Quick
            test_cluster_serializable;
          Alcotest.test_case "hostile frames survived" `Quick
            test_cluster_survives_hostile_frames;
          Alcotest.test_case "oversized frames counted" `Quick
            test_shim_counts_oversized_frames;
          Alcotest.test_case "silent node detected" `Quick
            test_cluster_detects_silent_node;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "2-shard loopback serializable" `Quick
            test_sharded_cluster_serializable;
          Alcotest.test_case "shard stamp isolates groups" `Quick
            test_shard_stamp_isolates_groups;
        ] );
    ]
