(* Unit tests for the discrete-event engine, FCFS resources and the
   core model. *)

module Engine = Mk_sim.Engine
module Resource = Mk_sim.Resource
module Core = Mk_sim.Core

let feq = Alcotest.(check (float 1e-9))

(* --- Engine --- *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5.0 (fun () -> log := 5 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "timestamp order" [ 1; 3; 5 ] (List.rev !log);
  feq "clock at last event" 5.0 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:2.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "ties dispatch in scheduling order" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := `A :: !log;
      Engine.schedule e ~delay:1.0 (fun () -> log := `B :: !log));
  Engine.run e;
  Alcotest.(check int) "two events" 2 (List.length !log);
  feq "clock" 2.0 (Engine.now e)

let test_engine_until_horizon () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1.0 (fun () -> incr fired);
  Engine.schedule e ~delay:10.0 (fun () -> incr fired);
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only early event" 1 !fired;
  feq "clock advanced to horizon" 5.0 (Engine.now e);
  Alcotest.(check int) "late event still queued" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "late event eventually fires" 2 !fired

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  Engine.schedule e ~delay:3.0 (fun () ->
      Engine.schedule e ~delay:(-7.0) (fun () -> ()));
  Engine.run e;
  feq "no time travel" 3.0 (Engine.now e)

let test_engine_schedule_at_past_clamped () =
  let e = Engine.create () in
  let at = ref 0.0 in
  Engine.schedule e ~delay:4.0 (fun () ->
      Engine.schedule_at e 1.0 (fun () -> at := Engine.now e));
  Engine.run e;
  feq "clamped to now" 4.0 !at

let test_engine_max_events () =
  let e = Engine.create () in
  let fired = ref 0 in
  let rec forever () =
    incr fired;
    Engine.schedule e ~delay:1.0 forever
  in
  Engine.schedule e ~delay:0.0 forever;
  Engine.run ~max_events:50 e;
  Alcotest.(check int) "bounded" 50 !fired

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "step on empty" false (Engine.step e);
  Engine.schedule e ~delay:1.0 (fun () -> ());
  Alcotest.(check bool) "step dispatches" true (Engine.step e);
  Alcotest.(check bool) "empty again" false (Engine.step e)

let test_engine_determinism () =
  (* Two engines with the same seed and same stimulus trace run
     identically, including RNG draws. *)
  let trace seed =
    let e = Engine.create ~seed () in
    let rng = Engine.rng e in
    let log = ref [] in
    for i = 1 to 20 do
      Engine.schedule e
        ~delay:(Mk_util.Rng.float rng 10.0)
        (fun () -> log := (i, Engine.now e) :: !log)
    done;
    Engine.run e;
    !log
  in
  Alcotest.(check bool) "same seed, same trace" true (trace 9 = trace 9);
  Alcotest.(check bool) "different seed, different trace" true (trace 9 <> trace 10)

(* --- Resource --- *)

let test_resource_serializes () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"mutex" in
  let done_at = ref [] in
  (* Three requests at t=0 holding 2 each: finish at 2, 4, 6. *)
  for _ = 1 to 3 do
    Resource.use r ~hold:2.0 (fun () -> done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "FCFS completion" [ 2.0; 4.0; 6.0 ]
    (List.rev !done_at);
  Alcotest.(check int) "acquisitions" 3 (Resource.acquisitions r);
  feq "busy time" 6.0 (Resource.busy_time r);
  feq "wait time" (2.0 +. 4.0) (Resource.wait_time r)

let test_resource_idle_gap () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"mutex" in
  let finished = ref 0.0 in
  Resource.use r ~hold:1.0 (fun () -> ());
  Engine.schedule e ~delay:10.0 (fun () ->
      Resource.use r ~hold:1.0 (fun () -> finished := Engine.now e));
  Engine.run e;
  feq "no queueing after idle gap" 11.0 !finished;
  feq "wait time zero" 0.0 (Resource.wait_time r)

let test_resource_negative_hold () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"mutex" in
  Alcotest.check_raises "negative hold" (Invalid_argument "Resource.use: negative hold")
    (fun () -> Resource.use r ~hold:(-1.0) (fun () -> ()))

let test_resource_throughput_cap () =
  (* The punchline the whole evaluation rests on: pushing load from
     many cores through one resource caps throughput at 1/hold. *)
  let e = Engine.create () in
  let r = Resource.create e ~name:"shared-log" in
  let completed = ref 0 in
  for _ = 1 to 1000 do
    Resource.use r ~hold:1.5 (fun () -> incr completed)
  done;
  Engine.run e;
  feq "serialized makespan" 1500.0 (Engine.now e);
  Alcotest.(check int) "all served" 1000 !completed

(* --- Core --- *)

let test_core_fcfs_jobs () =
  let e = Engine.create () in
  let c = Core.create e ~id:0 in
  let log = ref [] in
  Core.submit_work c ~cost:2.0 (fun () -> log := (1, Engine.now e) :: !log);
  Core.submit_work c ~cost:3.0 (fun () -> log := (2, Engine.now e) :: !log);
  Engine.run e;
  Alcotest.(check (list (pair int (float 1e-9)))) "sequential" [ (1, 2.0); (2, 5.0) ]
    (List.rev !log);
  Alcotest.(check int) "completed" 2 (Core.completed c);
  feq "busy time" 5.0 (Core.busy_time c)

let test_core_blocked_by_body () =
  (* A job body that waits on a resource keeps the core busy (spinning)
     until it finishes; queued jobs wait. *)
  let e = Engine.create () in
  let c = Core.create e ~id:0 in
  let r = Resource.create e ~name:"lock" in
  (* Occupy the resource from elsewhere until t=10. *)
  Resource.use r ~hold:10.0 (fun () -> ());
  let first_done = ref 0.0 and second_done = ref 0.0 in
  Core.submit c ~cost:1.0 (fun ~finish ->
      Resource.use r ~hold:1.0 (fun () ->
          first_done := Engine.now e;
          finish ()));
  Core.submit_work c ~cost:1.0 (fun () -> second_done := Engine.now e);
  Engine.run e;
  feq "job 1 spun on the lock" 11.0 !first_done;
  feq "job 2 queued behind the spin" 12.0 !second_done;
  feq "core busy the whole time" 12.0 (Core.busy_time c)

let test_core_idle_between_jobs () =
  let e = Engine.create () in
  let c = Core.create e ~id:0 in
  Core.submit_work c ~cost:1.0 (fun () -> ());
  Engine.schedule e ~delay:5.0 (fun () -> Core.submit_work c ~cost:1.0 (fun () -> ()));
  Engine.run e;
  feq "busy excludes idle gap" 2.0 (Core.busy_time c);
  feq "finished at 6" 6.0 (Engine.now e)

let test_core_double_finish_rejected () =
  let e = Engine.create () in
  let c = Core.create e ~id:0 in
  let saw_error = ref false in
  Core.submit c ~cost:1.0 (fun ~finish ->
      finish ();
      (try finish () with Invalid_argument _ -> saw_error := true));
  Engine.run e;
  Alcotest.(check bool) "second finish rejected" true !saw_error

let test_core_queue_length () =
  let e = Engine.create () in
  let c = Core.create e ~id:0 in
  Core.submit_work c ~cost:5.0 (fun () -> ());
  Core.submit_work c ~cost:5.0 (fun () -> ());
  Core.submit_work c ~cost:5.0 (fun () -> ());
  (* First job started immediately; two remain queued. *)
  Alcotest.(check int) "queued" 2 (Core.queue_length c);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Core.queue_length c)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "timestamp order" `Quick test_engine_time_order;
          Alcotest.test_case "FIFO tie-break" `Quick test_engine_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until horizon" `Quick test_engine_until_horizon;
          Alcotest.test_case "negative delay clamped" `Quick
            test_engine_negative_delay_clamped;
          Alcotest.test_case "schedule_at in past clamped" `Quick
            test_engine_schedule_at_past_clamped;
          Alcotest.test_case "max_events bound" `Quick test_engine_max_events;
          Alcotest.test_case "single step" `Quick test_engine_step;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
        ] );
      ( "resource",
        [
          Alcotest.test_case "FCFS serialization" `Quick test_resource_serializes;
          Alcotest.test_case "no queueing after idle" `Quick test_resource_idle_gap;
          Alcotest.test_case "negative hold rejected" `Quick test_resource_negative_hold;
          Alcotest.test_case "throughput capped at 1/hold" `Quick
            test_resource_throughput_cap;
        ] );
      ( "core",
        [
          Alcotest.test_case "FCFS jobs" `Quick test_core_fcfs_jobs;
          Alcotest.test_case "spin-wait keeps core busy" `Quick test_core_blocked_by_body;
          Alcotest.test_case "idle gaps not counted busy" `Quick
            test_core_idle_between_jobs;
          Alcotest.test_case "double finish rejected" `Quick
            test_core_double_finish_rejected;
          Alcotest.test_case "queue length" `Quick test_core_queue_length;
        ] );
    ]
