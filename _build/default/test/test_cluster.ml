(* Direct tests for the shared deployment scaffolding: client
   timestamp discipline, GET retransmission, load balancing. *)

module Engine = Mk_sim.Engine
module Timestamp = Mk_clock.Timestamp
module Cluster = Mk_cluster.Cluster

let small_cfg =
  { Cluster.default_config with threads = 2; n_clients = 4; keys = 16 }

let make () =
  let engine = Engine.create ~seed:9 () in
  (engine, Cluster.create engine small_cfg)

let test_config_validation () =
  let engine = Engine.create () in
  Alcotest.check_raises "even replicas rejected"
    (Invalid_argument "Cluster.create: n_replicas must be odd") (fun () ->
      ignore (Cluster.create engine { small_cfg with Cluster.n_replicas = 2 }))

let test_fresh_timestamp_monotone_per_client () =
  let engine, cluster = make () in
  let client = cluster.Cluster.clients.(0) in
  let prev = ref Timestamp.zero in
  for i = 1 to 100 do
    (* Even with zero elapsed simulated time, timestamps must advance. *)
    if i mod 10 = 0 then Engine.schedule engine ~delay:0.0 (fun () -> ());
    let ts = Cluster.fresh_timestamp cluster client in
    Alcotest.(check bool) "strictly increasing" true (Timestamp.compare ts !prev > 0);
    Alcotest.(check int) "carries client id" 0 ts.Timestamp.client_id;
    prev := ts
  done

let test_fresh_tids_unique_across_clients () =
  let _, cluster = make () in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun client ->
      for _ = 1 to 10 do
        let tid = Cluster.fresh_tid cluster client in
        Alcotest.(check bool) "unique" false (Hashtbl.mem seen tid);
        Hashtbl.add seen tid ()
      done)
    cluster.Cluster.clients;
  Alcotest.(check int) "count" 40 (Hashtbl.length seen)

let test_do_get_answers () =
  let engine, cluster = make () in
  let client = cluster.Cluster.clients.(0) in
  let got = ref None in
  Cluster.do_get cluster client ~key:3
    ~read:(fun ~replica ~key -> Some ((replica * 100) + key, Timestamp.zero))
    ~alive:(fun _ -> true)
    (fun (v, _) -> got := Some v);
  Engine.run engine;
  match !got with
  | Some v -> Alcotest.(check int) "key part" 3 (v mod 100)
  | None -> Alcotest.fail "no answer"

let test_do_get_skips_dead_replicas () =
  let engine, cluster = make () in
  let client = cluster.Cluster.clients.(1) in
  let got = ref None in
  (* Only replica 2 is alive. *)
  Cluster.do_get cluster client ~key:5
    ~read:(fun ~replica ~key:_ -> Some (replica, Timestamp.zero))
    ~alive:(fun r -> r = 2)
    (fun (v, _) -> got := Some v);
  Engine.run engine;
  Alcotest.(check (option int)) "served by replica 2" (Some 2) !got

let test_do_get_retries_unresponsive () =
  let engine, cluster = make () in
  let client = cluster.Cluster.clients.(2) in
  let attempts = ref 0 in
  let got = ref false in
  (* The first two attempts get no reply (paused replica); the third
     answers. Alive-looking but silent is exactly the paused case. *)
  Cluster.do_get cluster client ~key:1
    ~read:(fun ~replica:_ ~key:_ ->
      incr attempts;
      if !attempts < 3 then None else Some (7, Timestamp.zero))
    ~alive:(fun _ -> true)
    (fun (v, _) ->
      got := true;
      Alcotest.(check int) "value" 7 v);
  Engine.run ~until:1_000_000.0 engine;
  Alcotest.(check bool) "eventually answered" true !got;
  Alcotest.(check bool) "retried" true (!attempts >= 3);
  Alcotest.(check bool) "retransmits counted" true
    ((Cluster.counters cluster).Mk_model.System_intf.retransmits >= 2)

let test_do_get_waits_out_total_outage () =
  let engine, cluster = make () in
  let client = cluster.Cluster.clients.(3) in
  let got = ref false in
  let now_alive = ref false in
  Cluster.do_get cluster client ~key:1
    ~read:(fun ~replica:_ ~key:_ -> Some (1, Timestamp.zero))
    ~alive:(fun _ -> !now_alive)
    (fun _ -> got := true);
  (* Nothing alive for a while... *)
  Engine.run ~until:2_000.0 engine;
  Alcotest.(check bool) "no answer during outage" false !got;
  (* ...then the cluster comes back and the pending get completes. *)
  now_alive := true;
  Engine.run ~until:60_000.0 engine;
  Alcotest.(check bool) "answered after outage" true !got

let test_execute_reads_order_and_values () =
  let engine, cluster = make () in
  let client = cluster.Cluster.clients.(0) in
  let result = ref None in
  Cluster.execute_reads cluster client ~keys:[| 4; 9; 2 |]
    ~read:(fun ~replica:_ ~key -> Some (key * 10, Timestamp.make ~time:(float_of_int key) ~client_id:0))
    ~alive:(fun _ -> true)
    (fun read_set values -> result := Some (read_set, values));
  Engine.run engine;
  match !result with
  | None -> Alcotest.fail "no callback"
  | Some (read_set, values) ->
      Alcotest.(check (list int)) "read-set keys in order" [ 4; 9; 2 ]
        (List.map (fun (r : Mk_storage.Txn.read_entry) -> r.key) read_set);
      Alcotest.(check (array int)) "values in order" [| 40; 90; 20 |] values

let test_counters_roundtrip () =
  let _, cluster = make () in
  Cluster.note_decision cluster ~committed:true ~fast:true;
  Cluster.note_decision cluster ~committed:false ~fast:false;
  let c = Cluster.counters cluster in
  Alcotest.(check int) "committed" 1 c.Mk_model.System_intf.committed;
  Alcotest.(check int) "aborted" 1 c.Mk_model.System_intf.aborted;
  Alcotest.(check int) "fast" 1 c.Mk_model.System_intf.fast_path;
  Alcotest.(check int) "slow" 1 c.Mk_model.System_intf.slow_path

let () =
  Alcotest.run "cluster"
    [
      ( "clients",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "timestamps strictly monotone" `Quick
            test_fresh_timestamp_monotone_per_client;
          Alcotest.test_case "tids globally unique" `Quick
            test_fresh_tids_unique_across_clients;
          Alcotest.test_case "counters" `Quick test_counters_roundtrip;
        ] );
      ( "gets",
        [
          Alcotest.test_case "answers" `Quick test_do_get_answers;
          Alcotest.test_case "skips dead replicas" `Quick test_do_get_skips_dead_replicas;
          Alcotest.test_case "retries unresponsive" `Quick test_do_get_retries_unresponsive;
          Alcotest.test_case "waits out total outage" `Quick
            test_do_get_waits_out_total_outage;
          Alcotest.test_case "execute_reads order" `Quick
            test_execute_reads_order_and_values;
        ] );
    ]
