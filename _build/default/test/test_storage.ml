(* Unit tests for the storage substrate: transactions, the versioned
   store, Alg. 1 OCC validation, and the trecord. *)

module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Vstore = Mk_storage.Vstore
module Occ = Mk_storage.Occ
module Trecord = Mk_storage.Trecord

let ts time = Timestamp.make ~time ~client_id:1
let ts_c time client_id = Timestamp.make ~time ~client_id
let tid seq = Timestamp.Tid.make ~seq ~client_id:1

let txn ?(seq = 1) ~reads ~writes () =
  Txn.make ~tid:(tid seq)
    ~read_set:(List.map (fun (key, wts) -> ({ key; wts } : Txn.read_entry)) reads)
    ~write_set:(List.map (fun (key, value) -> ({ key; value } : Txn.write_entry)) writes)

let loaded_store nkeys =
  let store = Vstore.create ~shards:8 () in
  for key = 0 to nkeys - 1 do
    Vstore.load store ~key ~value:0
  done;
  store

let check_outcome = Alcotest.(check bool)

(* --- Txn --- *)

let test_txn_nkeys () =
  let t = txn ~reads:[ (1, Timestamp.zero); (2, Timestamp.zero) ] ~writes:[ (3, 9) ] () in
  Alcotest.(check int) "nkeys" 3 (Txn.nkeys t);
  Alcotest.(check bool) "reads 1" true (Txn.reads_key t 1);
  Alcotest.(check bool) "not reads 3" false (Txn.reads_key t 3);
  Alcotest.(check bool) "writes 3" true (Txn.writes_key t 3)

let test_txn_conflicts_rw () =
  let a = txn ~reads:[ (1, Timestamp.zero) ] ~writes:[] () in
  let b = txn ~seq:2 ~reads:[] ~writes:[ (1, 5) ] () in
  Alcotest.(check bool) "r-w conflict" true (Txn.conflicts a b);
  Alcotest.(check bool) "symmetric" true (Txn.conflicts b a)

let test_txn_conflicts_ww () =
  let a = txn ~reads:[] ~writes:[ (7, 1) ] () in
  let b = txn ~seq:2 ~reads:[] ~writes:[ (7, 2) ] () in
  Alcotest.(check bool) "w-w conflict" true (Txn.conflicts a b)

let test_txn_no_conflict () =
  let a = txn ~reads:[ (1, Timestamp.zero) ] ~writes:[ (2, 1) ] () in
  let b = txn ~seq:2 ~reads:[ (3, Timestamp.zero) ] ~writes:[ (4, 1) ] () in
  Alcotest.(check bool) "disjoint" false (Txn.conflicts a b);
  (* Read-read overlap is not a conflict. *)
  let c = txn ~seq:3 ~reads:[ (1, Timestamp.zero) ] ~writes:[ (5, 1) ] () in
  Alcotest.(check bool) "read-read is fine" false (Txn.conflicts a c)

(* --- Vstore --- *)

let test_vstore_load_find () =
  let store = loaded_store 4 in
  Alcotest.(check int) "size" 4 (Vstore.size store);
  let e = Vstore.find_exn store 2 in
  let value, wts = Vstore.read_versioned e in
  Alcotest.(check int) "initial value" 0 value;
  Alcotest.(check bool) "initial version" true (Timestamp.equal wts Timestamp.zero);
  Alcotest.(check bool) "missing" true (Vstore.find store 99 = None)

let test_vstore_find_or_create () =
  let store = Vstore.create ~shards:8 () in
  let e1 = Vstore.find_or_create store 42 in
  let e2 = Vstore.find_or_create store 42 in
  Alcotest.(check bool) "same entry" true (e1 == e2);
  Alcotest.(check int) "size" 1 (Vstore.size store)

let test_vstore_clear_pending () =
  let store = loaded_store 2 in
  let e = Vstore.find_exn store 0 in
  e.Vstore.readers <- Timestamp.Set.add (ts 1.0) e.Vstore.readers;
  e.Vstore.writers <- Timestamp.Set.add (ts 2.0) e.Vstore.writers;
  Alcotest.(check (pair int int)) "pending" (1, 1) (Vstore.pending_counts store);
  Vstore.clear_pending store;
  Alcotest.(check (pair int int)) "cleared" (0, 0) (Vstore.pending_counts store)

(* --- Alg. 1: read validation --- *)

let test_validate_fresh_read_ok () =
  let store = loaded_store 4 in
  let t = txn ~reads:[ (0, Timestamp.zero) ] ~writes:[] () in
  check_outcome "fresh read validates" true (Occ.validate store t ~ts:(ts 1.0) = `Ok);
  (* And the pending reader mark is installed. *)
  let e = Vstore.find_exn store 0 in
  Alcotest.(check int) "reader added" 1 (Timestamp.Set.cardinal e.Vstore.readers)

let test_validate_stale_read_aborts () =
  let store = loaded_store 4 in
  (* Commit a write at ts 5 to key 0. *)
  let w = txn ~reads:[] ~writes:[ (0, 7) ] () in
  check_outcome "writer validates" true (Occ.validate store w ~ts:(ts 5.0) = `Ok);
  Occ.finish store w ~ts:(ts 5.0) ~commit:true;
  (* A transaction that read version zero must now fail validation:
     e.wts > r.wts. *)
  let r = txn ~seq:2 ~reads:[ (0, Timestamp.zero) ] ~writes:[] () in
  check_outcome "stale read aborts" true (Occ.validate store r ~ts:(ts 6.0) = `Abort);
  (* But a reader that observed version 5 is fine. *)
  let r2 = txn ~seq:3 ~reads:[ (0, ts 5.0) ] ~writes:[] () in
  check_outcome "fresh read ok" true (Occ.validate store r2 ~ts:(ts 6.5) = `Ok)

let test_validate_read_behind_pending_writer_aborts () =
  let store = loaded_store 4 in
  (* Pending (validated, uncommitted) writer at ts 3. *)
  let w = txn ~reads:[] ~writes:[ (0, 7) ] () in
  check_outcome "writer validates" true (Occ.validate store w ~ts:(ts 3.0) = `Ok);
  (* Read at ts 4 > MIN(writers) = 3: if the writer commits, this read
     would have missed its version. Abort. *)
  let r = txn ~seq:2 ~reads:[ (0, Timestamp.zero) ] ~writes:[] () in
  check_outcome "read above pending writer aborts" true
    (Occ.validate store r ~ts:(ts 4.0) = `Abort);
  (* Read at ts 2 < pending writer's 3 is safe. *)
  let r2 = txn ~seq:3 ~reads:[ (0, Timestamp.zero) ] ~writes:[] () in
  check_outcome "read below pending writer ok" true
    (Occ.validate store r2 ~ts:(ts 2.0) = `Ok)

(* --- Alg. 1: write validation --- *)

let test_validate_write_before_rts_aborts () =
  let store = loaded_store 4 in
  (* Committed read at ts 10 sets rts. *)
  let r = txn ~reads:[ (0, Timestamp.zero) ] ~writes:[] () in
  check_outcome "reader validates" true (Occ.validate store r ~ts:(ts 10.0) = `Ok);
  Occ.finish store r ~ts:(ts 10.0) ~commit:true;
  (* A write at ts 9 < rts would interpose below that read. *)
  let w = txn ~seq:2 ~reads:[] ~writes:[ (0, 1) ] () in
  check_outcome "write below rts aborts" true (Occ.validate store w ~ts:(ts 9.0) = `Abort);
  (* A write above the rts is accepted. *)
  let w2 = txn ~seq:3 ~reads:[] ~writes:[ (0, 2) ] () in
  check_outcome "write above rts ok" true (Occ.validate store w2 ~ts:(ts 11.0) = `Ok)

let test_validate_write_behind_pending_reader_aborts () =
  let store = loaded_store 4 in
  (* Pending reader at ts 8 (validated, not yet committed). *)
  let r = txn ~reads:[ (0, Timestamp.zero) ] ~writes:[] () in
  check_outcome "reader validates" true (Occ.validate store r ~ts:(ts 8.0) = `Ok);
  (* Write at ts 7 < MAX(readers): would interpose between the version
     the pending reader saw and its timestamp. *)
  let w = txn ~seq:2 ~reads:[] ~writes:[ (0, 1) ] () in
  check_outcome "write below pending reader aborts" true
    (Occ.validate store w ~ts:(ts 7.0) = `Abort);
  let w2 = txn ~seq:3 ~reads:[] ~writes:[ (0, 2) ] () in
  check_outcome "write above pending reader ok" true
    (Occ.validate store w2 ~ts:(ts 9.0) = `Ok)

let test_validate_rmw_self_compatible () =
  (* A read-modify-write's own pending read mark must not abort its
     write check (ts < MAX(readers) is strict). *)
  let store = loaded_store 4 in
  let t = txn ~reads:[ (0, Timestamp.zero) ] ~writes:[ (0, 5) ] () in
  check_outcome "RMW validates" true (Occ.validate store t ~ts:(ts 1.0) = `Ok)

let test_validate_abort_backs_out_marks () =
  let store = loaded_store 4 in
  (* Make key 1 un-writable below ts 10. *)
  let r = txn ~reads:[ (1, Timestamp.zero) ] ~writes:[] () in
  check_outcome "reader ok" true (Occ.validate store r ~ts:(ts 10.0) = `Ok);
  (* This transaction reads key 0 (adds a reader mark) and then fails
     on its write to key 1; the key-0 mark must be backed out. *)
  let t = txn ~seq:2 ~reads:[ (0, Timestamp.zero) ] ~writes:[ (1, 3) ] () in
  check_outcome "aborts" true (Occ.validate store t ~ts:(ts 5.0) = `Abort);
  let e0 = Vstore.find_exn store 0 in
  Alcotest.(check int) "reader mark backed out" 0
    (Timestamp.Set.cardinal e0.Vstore.readers);
  let e1 = Vstore.find_exn store 1 in
  Alcotest.(check int) "only the pending reader remains" 1
    (Timestamp.Set.cardinal e1.Vstore.readers);
  Alcotest.(check int) "no writer mark" 0 (Timestamp.Set.cardinal e1.Vstore.writers)

(* --- Write phase --- *)

let test_finish_commit_installs () =
  let store = loaded_store 4 in
  let t = txn ~reads:[ (0, Timestamp.zero) ] ~writes:[ (0, 42) ] () in
  check_outcome "validates" true (Occ.validate store t ~ts:(ts 2.0) = `Ok);
  Occ.finish store t ~ts:(ts 2.0) ~commit:true;
  let e = Vstore.find_exn store 0 in
  let value, wts = Vstore.read_versioned e in
  Alcotest.(check int) "value installed" 42 value;
  Alcotest.(check bool) "version is commit ts" true (Timestamp.equal wts (ts 2.0));
  Alcotest.(check bool) "rts advanced" true (Timestamp.equal e.Vstore.rts (ts 2.0));
  Alcotest.(check (pair int int)) "pending cleared" (0, 0) (Vstore.pending_counts store)

let test_finish_abort_leaves_value () =
  let store = loaded_store 4 in
  let t = txn ~reads:[] ~writes:[ (0, 42) ] () in
  check_outcome "validates" true (Occ.validate store t ~ts:(ts 2.0) = `Ok);
  Occ.finish store t ~ts:(ts 2.0) ~commit:false;
  let e = Vstore.find_exn store 0 in
  let value, wts = Vstore.read_versioned e in
  Alcotest.(check int) "value untouched" 0 value;
  Alcotest.(check bool) "version untouched" true (Timestamp.equal wts Timestamp.zero);
  Alcotest.(check (pair int int)) "pending cleared" (0, 0) (Vstore.pending_counts store)

let test_thomas_write_rule () =
  let store = loaded_store 4 in
  (* Commit a write at ts 10 first. *)
  let w10 = txn ~reads:[] ~writes:[ (0, 10) ] () in
  check_outcome "w10 ok" true (Occ.validate store w10 ~ts:(ts 10.0) = `Ok);
  Occ.finish store w10 ~ts:(ts 10.0) ~commit:true;
  (* A write at ts 5 (validated before w10 committed on another
     replica, say) applies under the Thomas write rule: skipped, but
     committed. *)
  let w5 = txn ~seq:2 ~reads:[] ~writes:[ (0, 5) ] () in
  Occ.finish store w5 ~ts:(ts 5.0) ~commit:true;
  let e = Vstore.find_exn store 0 in
  let value, wts = Vstore.read_versioned e in
  Alcotest.(check int) "newer value survives" 10 value;
  Alcotest.(check bool) "newer version survives" true (Timestamp.equal wts (ts 10.0))

let test_finish_idempotent () =
  let store = loaded_store 4 in
  let t = txn ~reads:[ (0, Timestamp.zero) ] ~writes:[ (0, 9) ] () in
  check_outcome "validates" true (Occ.validate store t ~ts:(ts 3.0) = `Ok);
  Occ.finish store t ~ts:(ts 3.0) ~commit:true;
  Occ.finish store t ~ts:(ts 3.0) ~commit:true;
  let e = Vstore.find_exn store 0 in
  let value, _ = Vstore.read_versioned e in
  Alcotest.(check int) "value once" 9 value;
  Alcotest.(check (pair int int)) "no pending residue" (0, 0)
    (Vstore.pending_counts store)

let test_conflicting_pair_cannot_both_commit () =
  (* The pairwise-OCC property underlying the correctness proof
     (§5.4): of two conflicting transactions validated at one replica,
     the later arrival must abort. All four orderings. *)
  let cases =
    [ (1.0, 2.0); (2.0, 1.0) ]
    (* (ts of first-arriving, ts of second-arriving) *)
  in
  List.iter
    (fun (ts_a, ts_b) ->
      let store = loaded_store 2 in
      let a = txn ~seq:1 ~reads:[ (0, Timestamp.zero) ] ~writes:[ (0, 1) ] () in
      let b = txn ~seq:2 ~reads:[ (0, Timestamp.zero) ] ~writes:[ (0, 2) ] () in
      check_outcome "first validates" true (Occ.validate store a ~ts:(ts ts_a) = `Ok);
      check_outcome
        (Printf.sprintf "second aborts (%.0f then %.0f)" ts_a ts_b)
        true
        (Occ.validate store b ~ts:(ts ts_b) = `Abort))
    cases

(* --- Trecord --- *)

let test_trecord_partitioning () =
  let tr = Trecord.create ~cores:4 in
  Alcotest.(check int) "cores" 4 (Trecord.cores tr);
  let t = txn ~reads:[] ~writes:[ (0, 1) ] () in
  let core = Trecord.partition_of_tid tr t.Txn.tid in
  Alcotest.(check bool) "partition in range" true (core >= 0 && core < 4);
  let entry = Trecord.add tr ~core ~txn:t ~ts:(ts 1.0) ~status:Txn.Validated_ok in
  Alcotest.(check bool) "found in its partition" true
    (Trecord.find tr ~core t.Txn.tid = Some entry);
  let other = (core + 1) mod 4 in
  Alcotest.(check bool) "not in another partition" true
    (Trecord.find tr ~core:other t.Txn.tid = None)

let test_trecord_entries_and_replace () =
  let tr = Trecord.create ~cores:2 in
  let t1 = txn ~seq:1 ~reads:[] ~writes:[ (0, 1) ] () in
  let t2 = txn ~seq:2 ~reads:[] ~writes:[ (1, 1) ] () in
  ignore (Trecord.add tr ~core:0 ~txn:t1 ~ts:(ts 1.0) ~status:Txn.Validated_ok);
  ignore (Trecord.add tr ~core:1 ~txn:t2 ~ts:(ts 2.0) ~status:Txn.Committed);
  Alcotest.(check int) "size" 2 (Trecord.size tr);
  Alcotest.(check int) "committed count" 1 (Trecord.count_status tr Txn.Committed);
  let entries = Trecord.entries tr in
  let tr2 = Trecord.create ~cores:2 in
  Trecord.replace_all tr2 entries;
  Alcotest.(check int) "replaced size" 2 (Trecord.size tr2);
  Alcotest.(check bool) "t2 in core 1" true (Trecord.find tr2 ~core:1 t2.Txn.tid <> None)

let test_trecord_remove () =
  let tr = Trecord.create ~cores:2 in
  let t1 = txn ~reads:[] ~writes:[ (0, 1) ] () in
  ignore (Trecord.add tr ~core:0 ~txn:t1 ~ts:(ts 1.0) ~status:Txn.Validated_ok);
  Trecord.remove tr ~core:0 t1.Txn.tid;
  Alcotest.(check int) "empty" 0 (Trecord.size tr)

let test_trecord_trim () =
  let tr = Trecord.create ~cores:2 in
  let old_commit = txn ~seq:1 ~reads:[] ~writes:[ (0, 1) ] () in
  let old_pending = txn ~seq:2 ~reads:[] ~writes:[ (1, 1) ] () in
  let recent = txn ~seq:3 ~reads:[] ~writes:[ (2, 1) ] () in
  ignore (Trecord.add tr ~core:0 ~txn:old_commit ~ts:(ts 1.0) ~status:Txn.Committed);
  ignore (Trecord.add tr ~core:0 ~txn:old_pending ~ts:(ts 2.0) ~status:Txn.Validated_ok);
  ignore (Trecord.add tr ~core:1 ~txn:recent ~ts:(ts 9.0) ~status:Txn.Aborted);
  let removed = Trecord.trim_finalized tr ~before:(ts 5.0) in
  Alcotest.(check int) "one trimmed" 1 removed;
  Alcotest.(check bool) "final old gone" true
    (Trecord.find tr ~core:0 old_commit.Txn.tid = None);
  Alcotest.(check bool) "pending survives" true
    (Trecord.find tr ~core:0 old_pending.Txn.tid <> None);
  Alcotest.(check bool) "recent final survives" true
    (Trecord.find tr ~core:1 recent.Txn.tid <> None)

let test_status_helpers () =
  Alcotest.(check bool) "committed final" true (Txn.is_final Txn.Committed);
  Alcotest.(check bool) "aborted final" true (Txn.is_final Txn.Aborted);
  Alcotest.(check bool) "validated not final" false (Txn.is_final Txn.Validated_ok);
  Alcotest.(check bool) "accepted not final" false (Txn.is_final Txn.Accepted_commit);
  Alcotest.(check string) "render" "VALIDATED-OK" (Txn.status_to_string Txn.Validated_ok)

(* Reads by different clients at identical times are ordered by client
   id — the uniqueness argument of §5.2.2 step 1. *)
let test_timestamp_tiebreak_in_occ () =
  let store = loaded_store 2 in
  let a =
    Txn.make
      ~tid:(Timestamp.Tid.make ~seq:1 ~client_id:1)
      ~read_set:[ { key = 0; wts = Timestamp.zero } ]
      ~write_set:[ { key = 0; value = 1 } ]
  in
  let b =
    Txn.make
      ~tid:(Timestamp.Tid.make ~seq:1 ~client_id:2)
      ~read_set:[ { key = 0; wts = Timestamp.zero } ]
      ~write_set:[ { key = 0; value = 2 } ]
  in
  check_outcome "a ok" true (Occ.validate store a ~ts:(ts_c 1.0 1) = `Ok);
  (* Same time, higher client id: a distinct, later timestamp; it
     conflicts with the pending a and must abort. *)
  check_outcome "b aborts" true (Occ.validate store b ~ts:(ts_c 1.0 2) = `Abort)

let () =
  Alcotest.run "storage"
    [
      ( "txn",
        [
          Alcotest.test_case "nkeys and membership" `Quick test_txn_nkeys;
          Alcotest.test_case "read-write conflict" `Quick test_txn_conflicts_rw;
          Alcotest.test_case "write-write conflict" `Quick test_txn_conflicts_ww;
          Alcotest.test_case "disjoint transactions" `Quick test_txn_no_conflict;
          Alcotest.test_case "status helpers" `Quick test_status_helpers;
        ] );
      ( "vstore",
        [
          Alcotest.test_case "load and find" `Quick test_vstore_load_find;
          Alcotest.test_case "find_or_create" `Quick test_vstore_find_or_create;
          Alcotest.test_case "clear_pending" `Quick test_vstore_clear_pending;
        ] );
      ( "occ-reads",
        [
          Alcotest.test_case "fresh read ok" `Quick test_validate_fresh_read_ok;
          Alcotest.test_case "stale read aborts" `Quick test_validate_stale_read_aborts;
          Alcotest.test_case "read behind pending writer" `Quick
            test_validate_read_behind_pending_writer_aborts;
        ] );
      ( "occ-writes",
        [
          Alcotest.test_case "write below rts aborts" `Quick
            test_validate_write_before_rts_aborts;
          Alcotest.test_case "write behind pending reader" `Quick
            test_validate_write_behind_pending_reader_aborts;
          Alcotest.test_case "RMW self-compatible" `Quick
            test_validate_rmw_self_compatible;
          Alcotest.test_case "abort backs out marks" `Quick
            test_validate_abort_backs_out_marks;
        ] );
      ( "write-phase",
        [
          Alcotest.test_case "commit installs version" `Quick test_finish_commit_installs;
          Alcotest.test_case "abort leaves value" `Quick test_finish_abort_leaves_value;
          Alcotest.test_case "Thomas write rule" `Quick test_thomas_write_rule;
          Alcotest.test_case "finish idempotent" `Quick test_finish_idempotent;
          Alcotest.test_case "conflicting pair: one aborts" `Quick
            test_conflicting_pair_cannot_both_commit;
          Alcotest.test_case "client-id tie-break" `Quick test_timestamp_tiebreak_in_occ;
        ] );
      ( "trecord",
        [
          Alcotest.test_case "per-core partitioning" `Quick test_trecord_partitioning;
          Alcotest.test_case "entries and replace_all" `Quick
            test_trecord_entries_and_replace;
          Alcotest.test_case "remove" `Quick test_trecord_remove;
          Alcotest.test_case "trim finalized" `Quick test_trecord_trim;
        ] );
    ]
