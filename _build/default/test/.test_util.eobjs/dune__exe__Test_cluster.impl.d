test/test_cluster.ml: Alcotest Array Hashtbl List Mk_clock Mk_cluster Mk_model Mk_sim Mk_storage
