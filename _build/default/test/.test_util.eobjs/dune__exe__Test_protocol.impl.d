test/test_protocol.ml: Alcotest Array Format Hashtbl List Mk_clock Mk_harness Mk_meerkat Mk_model Mk_net Mk_sim Mk_storage Printf
