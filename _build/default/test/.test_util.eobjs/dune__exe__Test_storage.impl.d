test/test_storage.ml: Alcotest List Mk_clock Mk_storage Printf
