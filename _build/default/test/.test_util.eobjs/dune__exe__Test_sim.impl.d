test/test_sim.ml: Alcotest List Mk_sim Mk_util
