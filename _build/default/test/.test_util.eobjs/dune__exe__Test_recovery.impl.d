test/test_recovery.ml: Alcotest Array List Mk_clock Mk_meerkat Mk_storage
