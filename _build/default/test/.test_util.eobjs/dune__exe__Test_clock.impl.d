test/test_clock.ml: Alcotest Mk_clock Mk_util
