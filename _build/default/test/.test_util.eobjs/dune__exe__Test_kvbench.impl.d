test/test_kvbench.ml: Alcotest Mk_kvbench Mk_model Mk_net Mk_sim
