test/test_chaos.ml: Alcotest Array Format Hashtbl List Mk_harness Mk_meerkat Mk_model Mk_net Mk_sim Mk_storage Mk_util Printf
