test/test_quorum.ml: Alcotest List Mk_meerkat Mk_storage Printf
