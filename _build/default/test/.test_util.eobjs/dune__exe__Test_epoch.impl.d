test/test_epoch.ml: Alcotest List Mk_clock Mk_meerkat Mk_storage
