test/test_harness.ml: Alcotest Array Format Hashtbl List Mk_clock Mk_harness Mk_model Mk_sim Mk_storage Mk_util Mk_workload Option String
