test/test_props.ml: Alcotest Hashtbl List Mk_clock Mk_harness Mk_meerkat Mk_storage Mk_util Mk_workload QCheck QCheck_alcotest
