test/test_baselines.ml: Alcotest Array List Mk_baselines Mk_cluster Mk_model Mk_sim Mk_systems Printf
