test/test_util.ml: Alcotest Array Float List Mk_util String
