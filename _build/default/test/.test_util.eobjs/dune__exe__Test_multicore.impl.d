test/test_multicore.ml: Alcotest Format List Mk_harness Mk_multicore Mk_storage
