test/test_net.ml: Alcotest List Mk_net Mk_sim Mk_util
