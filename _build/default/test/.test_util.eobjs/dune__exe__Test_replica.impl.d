test/test_replica.ml: Alcotest List Mk_clock Mk_meerkat Mk_storage
