test/test_kvbench.mli:
