test/test_workload.ml: Alcotest Array Hashtbl List Mk_model Mk_util Mk_workload Printf
