test/test_epoch.mli:
