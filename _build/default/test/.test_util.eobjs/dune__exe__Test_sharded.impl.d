test/test_sharded.ml: Alcotest Array Format Hashtbl List Mk_clock Mk_cluster Mk_meerkat Mk_model Mk_sim Mk_storage Printf
