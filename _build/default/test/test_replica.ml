(* Unit tests for the Meerkat replica's protocol handlers, driven
   directly (no simulator). *)

module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Quorum = Mk_meerkat.Quorum
module Replica = Mk_meerkat.Replica

let q3 = Quorum.create ~n:3
let ts time = Timestamp.make ~time ~client_id:1

let txn ?(client = 1) ~seq ~reads ~writes () =
  Txn.make
    ~tid:(Timestamp.Tid.make ~seq ~client_id:client)
    ~read_set:(List.map (fun (key, wts) -> ({ key; wts } : Txn.read_entry)) reads)
    ~write_set:(List.map (fun (key, value) -> ({ key; value } : Txn.write_entry)) writes)

let fresh ?(cores = 4) ?(keys = 16) () =
  let r = Replica.create ~id:0 ~quorum:q3 ~cores in
  for key = 0 to keys - 1 do
    Replica.load r ~key ~value:0
  done;
  r

let rmw ~seq key = txn ~seq ~reads:[ (key, Timestamp.zero) ] ~writes:[ (key, seq) ] ()

let test_get_initial () =
  let r = fresh () in
  (match Replica.handle_get r ~key:3 with
  | Some (0, wts) ->
      Alcotest.(check bool) "zero version" true (Timestamp.equal wts Timestamp.zero)
  | _ -> Alcotest.fail "expected initial value");
  (* Unloaded keys read as the zero version rather than failing —
     blind writes may create them later. *)
  match Replica.handle_get r ~key:99 with
  | Some (0, _) -> ()
  | _ -> Alcotest.fail "unloaded key reads zero"

let test_validate_and_commit_cycle () =
  let r = fresh () in
  let t = rmw ~seq:1 0 in
  Alcotest.(check bool) "validates ok" true
    (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0) = Some Txn.Validated_ok);
  Alcotest.(check bool) "commit accepted" true
    (Replica.handle_commit r ~core:1 ~txn:t ~ts:(ts 1.0) ~commit:true = Some ());
  (match Replica.handle_get r ~key:0 with
  | Some (1, wts) -> Alcotest.(check bool) "version" true (Timestamp.equal wts (ts 1.0))
  | _ -> Alcotest.fail "value not installed");
  Alcotest.(check int) "counters" 1 (Replica.committed r);
  Alcotest.(check int) "ok count" 1 (Replica.validations_ok r)

let test_validate_deduplicates () =
  let r = fresh () in
  let t = rmw ~seq:1 0 in
  Alcotest.(check bool) "first" true
    (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0) = Some Txn.Validated_ok);
  (* A retransmitted validate must not re-run the checks (the pending
     sets would be corrupted) — it reports the recorded status. *)
  Alcotest.(check bool) "duplicate returns same" true
    (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0) = Some Txn.Validated_ok);
  Alcotest.(check int) "validated once" 1 (Replica.validations_ok r);
  let e = Mk_storage.Vstore.find_exn (Replica.vstore r) 0 in
  Alcotest.(check int) "single reader mark" 1
    (Timestamp.Set.cardinal e.Mk_storage.Vstore.readers)

let test_validate_conflict_aborts () =
  let r = fresh () in
  let a = rmw ~seq:1 0 in
  let b = txn ~client:2 ~seq:1 ~reads:[ (0, Timestamp.zero) ] ~writes:[ (0, 9) ] () in
  Alcotest.(check bool) "a ok" true
    (Replica.handle_validate r ~core:1 ~txn:a ~ts:(ts 1.0) = Some Txn.Validated_ok);
  Alcotest.(check bool) "b aborts" true
    (Replica.handle_validate r ~core:2 ~txn:b
       ~ts:(Timestamp.make ~time:2.0 ~client_id:2)
    = Some Txn.Validated_abort);
  Alcotest.(check int) "abort counted" 1 (Replica.validations_abort r)

let test_commit_after_local_abort_still_applies () =
  (* A replica that voted VALIDATED-ABORT can still receive a commit
     (the slow path committed elsewhere); it must apply the writes. *)
  let r = fresh () in
  let a = rmw ~seq:1 0 in
  let b = txn ~client:2 ~seq:1 ~reads:[ (0, Timestamp.zero) ] ~writes:[ (0, 77) ] () in
  ignore (Replica.handle_validate r ~core:1 ~txn:a ~ts:(ts 1.0));
  Alcotest.(check bool) "b locally aborts" true
    (Replica.handle_validate r ~core:2 ~txn:b
       ~ts:(Timestamp.make ~time:2.0 ~client_id:2)
    = Some Txn.Validated_abort);
  (* The cluster nevertheless committed b. *)
  ignore
    (Replica.handle_commit r ~core:2 ~txn:b
       ~ts:(Timestamp.make ~time:2.0 ~client_id:2)
       ~commit:true);
  match Replica.handle_get r ~key:0 with
  | Some (77, _) -> ()
  | Some (v, _) -> Alcotest.failf "expected 77, got %d" v
  | None -> Alcotest.fail "no reply"

let test_commit_unknown_txn_applies () =
  (* A replica that missed validation entirely still applies a commit
     (the message carries the transaction). *)
  let r = fresh () in
  let t = rmw ~seq:5 3 in
  Alcotest.(check bool) "commit accepted" true
    (Replica.handle_commit r ~core:0 ~txn:t ~ts:(ts 4.0) ~commit:true = Some ());
  match Replica.handle_get r ~key:3 with
  | Some (5, _) -> ()
  | _ -> Alcotest.fail "write not applied"

let test_commit_idempotent () =
  let r = fresh () in
  let t = rmw ~seq:1 0 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0));
  ignore (Replica.handle_commit r ~core:1 ~txn:t ~ts:(ts 1.0) ~commit:true);
  ignore (Replica.handle_commit r ~core:1 ~txn:t ~ts:(ts 1.0) ~commit:true);
  Alcotest.(check int) "committed once" 1 (Replica.committed r)

let test_abort_cleans_pending () =
  let r = fresh () in
  let t = rmw ~seq:1 0 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0));
  ignore (Replica.handle_commit r ~core:1 ~txn:t ~ts:(ts 1.0) ~commit:false);
  Alcotest.(check (pair int int)) "no pending marks" (0, 0)
    (Mk_storage.Vstore.pending_counts (Replica.vstore r));
  Alcotest.(check int) "aborted" 1 (Replica.aborted r);
  (* Aborted transaction's write is not visible. *)
  match Replica.handle_get r ~key:0 with
  | Some (0, _) -> ()
  | _ -> Alcotest.fail "aborted write leaked"

let test_accept_view_discipline () =
  let r = fresh () in
  let t = rmw ~seq:1 0 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0));
  (* Accept at view 2. *)
  Alcotest.(check bool) "view 2 accepted" true
    (Replica.handle_accept r ~core:1 ~txn:t ~ts:(ts 1.0) ~decision:`Commit ~view:2
    = Some `Accepted);
  (* A lower view is stale. *)
  (match Replica.handle_accept r ~core:1 ~txn:t ~ts:(ts 1.0) ~decision:`Abort ~view:1 with
  | Some (`Stale v) -> Alcotest.(check int) "reports current view" 2 v
  | _ -> Alcotest.fail "expected Stale");
  (* An equal view re-accepts (idempotent retransmission). *)
  Alcotest.(check bool) "same view ok" true
    (Replica.handle_accept r ~core:1 ~txn:t ~ts:(ts 1.0) ~decision:`Commit ~view:2
    = Some `Accepted)

let test_accept_without_record_creates_one () =
  let r = fresh () in
  let t = rmw ~seq:9 2 in
  Alcotest.(check bool) "accepted" true
    (Replica.handle_accept r ~core:0 ~txn:t ~ts:(ts 3.0) ~decision:`Abort ~view:1
    = Some `Accepted);
  match Mk_storage.Trecord.find (Replica.trecord r) ~core:0 t.Txn.tid with
  | Some e ->
      Alcotest.(check bool) "recorded as accepted abort" true
        (e.Mk_storage.Trecord.status = Txn.Accepted_abort);
      Alcotest.(check (option int)) "accept view" (Some 1)
        e.Mk_storage.Trecord.accept_view
  | None -> Alcotest.fail "no record created"

let test_accept_after_final_reports_outcome () =
  let r = fresh () in
  let t = rmw ~seq:1 0 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0));
  ignore (Replica.handle_commit r ~core:1 ~txn:t ~ts:(ts 1.0) ~commit:true);
  match Replica.handle_accept r ~core:1 ~txn:t ~ts:(ts 1.0) ~decision:`Abort ~view:5 with
  | Some (`Finalized Txn.Committed) -> ()
  | _ -> Alcotest.fail "expected Finalized COMMITTED"

let test_coord_change_reports_state () =
  let r = fresh () in
  let t = rmw ~seq:1 0 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0));
  (match Replica.handle_coord_change r ~core:1 ~tid:t.Txn.tid ~view:1 with
  | Some (`View_ok (Some view)) ->
      Alcotest.(check bool) "status" true (view.Replica.status = Txn.Validated_ok);
      Alcotest.(check int) "joined view" 1 view.Replica.view
  | _ -> Alcotest.fail "expected record state");
  (* Lower or equal view now refused. *)
  match Replica.handle_coord_change r ~core:1 ~tid:t.Txn.tid ~view:1 with
  | Some (`Stale v) -> Alcotest.(check int) "stale view" 1 v
  | _ -> Alcotest.fail "expected Stale"

let test_coord_change_unknown_txn () =
  let r = fresh () in
  match
    Replica.handle_coord_change r ~core:0
      ~tid:(Timestamp.Tid.make ~seq:42 ~client_id:9)
      ~view:1
  with
  | Some (`View_ok None) -> ()
  | _ -> Alcotest.fail "expected View_ok None"

let test_crash_loses_state_and_refuses () =
  let r = fresh () in
  let t = rmw ~seq:1 0 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0));
  ignore (Replica.handle_commit r ~core:1 ~txn:t ~ts:(ts 1.0) ~commit:true);
  Replica.crash r;
  Alcotest.(check bool) "crashed" true (Replica.is_crashed r);
  Alcotest.(check bool) "get refused" true (Replica.handle_get r ~key:0 = None);
  Alcotest.(check bool) "validate refused" true
    (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0) = None);
  Alcotest.(check bool) "commit refused" true
    (Replica.handle_commit r ~core:1 ~txn:t ~ts:(ts 1.0) ~commit:true = None);
  Alcotest.(check int) "trecord wiped" 0 (Mk_storage.Trecord.size (Replica.trecord r));
  Alcotest.(check int) "vstore wiped" 0 (Mk_storage.Vstore.size (Replica.vstore r))

let test_epoch_change_pauses_validation () =
  let r = fresh () in
  let t = rmw ~seq:1 0 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0));
  (match Replica.handle_epoch_change r ~epoch:1 with
  | Some views -> Alcotest.(check int) "reports its record" 1 (List.length views)
  | None -> Alcotest.fail "expected participation");
  Alcotest.(check bool) "paused" false (Replica.is_available r);
  (* New validations refused while paused. *)
  let t2 = rmw ~seq:2 1 in
  Alcotest.(check bool) "validate refused" true
    (Replica.handle_validate r ~core:1 ~txn:t2 ~ts:(ts 2.0) = None);
  (* Stale epoch refused. *)
  Alcotest.(check bool) "stale epoch" true (Replica.handle_epoch_change r ~epoch:1 = None);
  (* Completion resumes processing. *)
  let record : Replica.record_view =
    { txn = t; ts = ts 1.0; status = Txn.Committed; view = 0; accept_view = None }
  in
  Alcotest.(check bool) "complete ok" true
    (Replica.handle_epoch_complete r ~epoch:1 ~records:[ (1, record) ] ~store:None
    = Some ());
  Alcotest.(check bool) "resumed" true (Replica.is_available r);
  Alcotest.(check int) "epoch bumped" 1 (Replica.epoch r);
  (* The merged commit was applied. *)
  match Replica.handle_get r ~key:0 with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "merged commit not applied"

let test_epoch_complete_with_snapshot_restores () =
  let r = fresh () in
  Replica.crash r;
  Replica.begin_recovery r;
  Alcotest.(check bool) "up but paused" false (Replica.is_available r);
  let store = [ (0, 7, ts 1.0, ts 2.0); (1, 8, ts 3.0, Timestamp.zero) ] in
  Alcotest.(check bool) "complete ok" true
    (Replica.handle_epoch_complete r ~epoch:2 ~records:[] ~store:(Some store) = Some ());
  Alcotest.(check bool) "available" true (Replica.is_available r);
  (match Replica.handle_get r ~key:0 with
  | Some (7, wts) -> Alcotest.(check bool) "wts restored" true (Timestamp.equal wts (ts 1.0))
  | _ -> Alcotest.fail "snapshot not restored");
  match Replica.handle_get r ~key:1 with
  | Some (8, _) -> ()
  | _ -> Alcotest.fail "snapshot key 1 missing"

let test_epoch_complete_duplicate_does_not_reinstall () =
  (* Regression (found by the chaos suite): a retransmitted
     epoch-change-complete must not re-install the merged trecord —
     that would erase records of transactions that finished after the
     first install, leaving their writes as orphan versions in the
     store (a serializability violation for later readers). *)
  let r = fresh () in
  let t_old = rmw ~seq:1 0 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t_old ~ts:(ts 1.0));
  ignore (Replica.handle_epoch_change r ~epoch:1);
  let merged : (int * Replica.record_view) list =
    [ (1, { txn = t_old; ts = ts 1.0; status = Txn.Committed; view = 0; accept_view = None }) ]
  in
  Alcotest.(check bool) "first install" true
    (Replica.handle_epoch_complete r ~epoch:1 ~records:merged ~store:None = Some ());
  (* A transaction commits after the install... *)
  let t_new = rmw ~seq:2 1 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t_new ~ts:(ts 2.0));
  ignore (Replica.handle_commit r ~core:1 ~txn:t_new ~ts:(ts 2.0) ~commit:true);
  (* ...then the duplicate complete arrives: it must be acknowledged
     (so the recovery coordinator stops retransmitting) but must not
     touch the trecord. *)
  Alcotest.(check bool) "duplicate acked" true
    (Replica.handle_epoch_complete r ~epoch:1 ~records:merged ~store:None = Some ());
  match Mk_storage.Trecord.find (Replica.trecord r) ~core:1 t_new.Txn.tid with
  | Some e ->
      Alcotest.(check bool) "new commit survives" true
        (e.Mk_storage.Trecord.status = Txn.Committed)
  | None -> Alcotest.fail "duplicate install erased a newer commit"

let test_store_snapshot_roundtrip () =
  let r = fresh ~keys:8 () in
  let t = rmw ~seq:1 5 in
  ignore (Replica.handle_validate r ~core:1 ~txn:t ~ts:(ts 1.0));
  ignore (Replica.handle_commit r ~core:1 ~txn:t ~ts:(ts 1.0) ~commit:true);
  let snapshot = Replica.store_snapshot r in
  Alcotest.(check int) "snapshot size" 8 (List.length snapshot);
  let r2 = Replica.create ~id:1 ~quorum:q3 ~cores:4 in
  Replica.begin_recovery r2;
  ignore (Replica.handle_epoch_complete r2 ~epoch:1 ~records:[] ~store:(Some snapshot));
  match Replica.handle_get r2 ~key:5 with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "snapshot did not carry the committed value"

let () =
  Alcotest.run "replica"
    [
      ( "normal-case",
        [
          Alcotest.test_case "get initial" `Quick test_get_initial;
          Alcotest.test_case "validate+commit cycle" `Quick test_validate_and_commit_cycle;
          Alcotest.test_case "validate deduplicates" `Quick test_validate_deduplicates;
          Alcotest.test_case "conflict aborts" `Quick test_validate_conflict_aborts;
          Alcotest.test_case "commit overrides local abort" `Quick
            test_commit_after_local_abort_still_applies;
          Alcotest.test_case "commit without validation" `Quick
            test_commit_unknown_txn_applies;
          Alcotest.test_case "commit idempotent" `Quick test_commit_idempotent;
          Alcotest.test_case "abort cleans pending" `Quick test_abort_cleans_pending;
        ] );
      ( "views",
        [
          Alcotest.test_case "accept view discipline" `Quick test_accept_view_discipline;
          Alcotest.test_case "accept creates missing record" `Quick
            test_accept_without_record_creates_one;
          Alcotest.test_case "accept after final" `Quick
            test_accept_after_final_reports_outcome;
          Alcotest.test_case "coord-change reports state" `Quick
            test_coord_change_reports_state;
          Alcotest.test_case "coord-change unknown txn" `Quick
            test_coord_change_unknown_txn;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash loses state" `Quick test_crash_loses_state_and_refuses;
          Alcotest.test_case "epoch change pauses and resumes" `Quick
            test_epoch_change_pauses_validation;
          Alcotest.test_case "snapshot restore" `Quick
            test_epoch_complete_with_snapshot_restores;
          Alcotest.test_case "snapshot roundtrip" `Quick test_store_snapshot_roundtrip;
          Alcotest.test_case "duplicate epoch-complete is a no-op" `Quick
            test_epoch_complete_duplicate_does_not_reinstall;
        ] );
    ]
