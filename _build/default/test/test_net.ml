(* Unit tests for the transport cost model and message delivery. *)

module Engine = Mk_sim.Engine
module Core = Mk_sim.Core
module Transport = Mk_net.Transport
module Network = Mk_net.Network

let make_net ?(transport = Transport.erpc) () =
  let engine = Engine.create ~seed:2 () in
  let rng = Mk_util.Rng.create ~seed:3 in
  (engine, Network.create engine ~rng ~transport)

let test_transport_presets () =
  Alcotest.(check bool) "erpc cheaper rx" true
    (Transport.erpc.Transport.rx_cpu < Transport.udp.Transport.rx_cpu);
  Alcotest.(check bool) "erpc cheaper tx" true
    (Transport.erpc.Transport.tx_cpu < Transport.udp.Transport.tx_cpu);
  Alcotest.(check bool) "erpc lower latency" true
    (Transport.erpc.Transport.latency < Transport.udp.Transport.latency);
  (* The per-message CPU gap is what produces Fig. 1's ~8x. *)
  let total t = t.Transport.rx_cpu +. t.Transport.tx_cpu in
  Alcotest.(check bool) "per-message gap is large" true
    (total Transport.udp /. total Transport.erpc > 5.0);
  Alcotest.(check (float 1e-9)) "no drops by default" 0.0
    Transport.erpc.Transport.drop_prob

let test_with_drop () =
  let t = Transport.with_drop Transport.erpc 0.25 in
  Alcotest.(check (float 1e-9)) "drop set" 0.25 t.Transport.drop_prob;
  Alcotest.(check string) "otherwise unchanged" Transport.erpc.Transport.name
    t.Transport.name

let test_delivery_latency_and_rx_cost () =
  let engine, net = make_net ~transport:{ Transport.erpc with jitter = 0.0 } () in
  let dst = Core.create engine ~id:0 in
  let handled_at = ref 0.0 in
  Network.send_work_to_core net ~dst ~cost:1.0 (fun () -> handled_at := Engine.now engine);
  Engine.run engine;
  (* latency 2.0 + (rx 0.25 + handler 1.0) of core time. *)
  Alcotest.(check (float 1e-9)) "arrival + service" (2.0 +. 0.25 +. 1.0) !handled_at;
  Alcotest.(check (float 1e-9)) "core charged rx+handler" 1.25 (Core.busy_time dst);
  Alcotest.(check int) "sent" 1 (Network.messages_sent net)

let test_jitter_within_bounds () =
  let engine, net =
    make_net ~transport:{ Transport.erpc with latency = 5.0; jitter = 2.0 } ()
  in
  let arrivals = ref [] in
  for _ = 1 to 200 do
    Network.send_to_client net (fun () -> arrivals := Engine.now engine :: !arrivals)
  done;
  Engine.run engine;
  List.iter
    (fun at -> Alcotest.(check bool) "within [5,7)" true (at >= 5.0 && at < 7.0))
    !arrivals;
  (* Jitter actually varies. *)
  let distinct = List.sort_uniq compare !arrivals in
  Alcotest.(check bool) "jitter varies" true (List.length distinct > 100)

let test_drops () =
  let engine, net = make_net ~transport:(Transport.with_drop Transport.erpc 0.5) () in
  let delivered = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    Network.send_to_client net (fun () -> incr delivered)
  done;
  Engine.run engine;
  Alcotest.(check int) "accounting" n (Network.messages_sent net);
  Alcotest.(check int) "dropped + delivered = sent" n
    (!delivered + Network.messages_dropped net);
  let rate = float_of_int (Network.messages_dropped net) /. float_of_int n in
  Alcotest.(check bool) "drop rate near 0.5" true (abs_float (rate -. 0.5) < 0.05)

let test_send_to_client_no_core_cost () =
  let engine, net = make_net () in
  let got = ref false in
  Network.send_to_client net (fun () -> got := true);
  Engine.run engine;
  Alcotest.(check bool) "delivered" true !got

let test_tx_cpu_accessor () =
  let _, net = make_net () in
  Alcotest.(check (float 1e-9)) "tx cpu" Transport.erpc.Transport.tx_cpu
    (Network.tx_cpu net)

let () =
  Alcotest.run "net"
    [
      ( "transport",
        [
          Alcotest.test_case "preset relationships" `Quick test_transport_presets;
          Alcotest.test_case "with_drop" `Quick test_with_drop;
        ] );
      ( "network",
        [
          Alcotest.test_case "latency and rx cost" `Quick test_delivery_latency_and_rx_cost;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_within_bounds;
          Alcotest.test_case "drops" `Quick test_drops;
          Alcotest.test_case "client delivery" `Quick test_send_to_client_no_core_cost;
          Alcotest.test_case "tx_cpu accessor" `Quick test_tx_cpu_accessor;
        ] );
    ]
