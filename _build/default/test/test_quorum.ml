(* Quorum arithmetic and the coordinator's reply-evaluation rule. *)

module Quorum = Mk_meerkat.Quorum
module Decision = Mk_meerkat.Decision
module Txn = Mk_storage.Txn

let test_quorum_sizes () =
  let q3 = Quorum.create ~n:3 in
  Alcotest.(check int) "n=3 f" 1 q3.Quorum.f;
  Alcotest.(check int) "n=3 majority" 2 (Quorum.majority q3);
  Alcotest.(check int) "n=3 fast" 3 (Quorum.fast q3);
  Alcotest.(check int) "n=3 fast_recovery" 2 (Quorum.fast_recovery q3);
  let q5 = Quorum.create ~n:5 in
  Alcotest.(check int) "n=5 majority" 3 (Quorum.majority q5);
  Alcotest.(check int) "n=5 fast" 4 (Quorum.fast q5);
  Alcotest.(check int) "n=5 fast_recovery" 2 (Quorum.fast_recovery q5);
  let q7 = Quorum.create ~n:7 in
  Alcotest.(check int) "n=7 fast" 6 (Quorum.fast q7);
  Alcotest.(check int) "n=7 fast_recovery" 3 (Quorum.fast_recovery q7)

let test_quorum_of_f () =
  let q = Quorum.of_f ~f:2 in
  Alcotest.(check int) "n" 5 q.Quorum.n

let test_quorum_validation () =
  Alcotest.check_raises "even n" (Invalid_argument "Quorum.create: n must be odd and positive")
    (fun () -> ignore (Quorum.create ~n:4));
  Alcotest.check_raises "negative f" (Invalid_argument "Quorum.of_f: f must be non-negative")
    (fun () -> ignore (Quorum.of_f ~f:(-1)))

let test_fast_quorum_is_supermajority () =
  (* fast > 3n/4, the paper's supermajority condition. *)
  List.iter
    (fun n ->
      let q = Quorum.create ~n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d supermajority" n)
        true
        (float_of_int (Quorum.fast q) > 0.75 *. float_of_int n))
    [ 1; 3; 5; 7; 9; 11 ]

let test_fast_quorum_intersection_property () =
  (* Any majority must intersect a fast quorum in at least
     fast_recovery replicas — the bound the recovery protocols rely
     on. *)
  List.iter
    (fun n ->
      let q = Quorum.create ~n in
      let intersection = Quorum.fast q + Quorum.majority q - n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d intersection" n)
        true
        (intersection >= Quorum.fast_recovery q))
    [ 1; 3; 5; 7; 9; 11 ]

(* --- Decision.evaluate --- *)

let q3 = Quorum.create ~n:3

let ev replies = Decision.evaluate ~quorum:q3 ~replies

let test_decision_wait_no_replies () =
  Alcotest.(check bool) "no replies" true (ev [| None; None; None |] = Decision.Wait)

let test_decision_wait_one_ok () =
  Alcotest.(check bool) "one ok waits" true
    (ev [| Some Txn.Validated_ok; None; None |] = Decision.Wait)

let test_decision_fast_commit () =
  Alcotest.(check bool) "3 ok = fast commit" true
    (ev [| Some Txn.Validated_ok; Some Txn.Validated_ok; Some Txn.Validated_ok |]
    = Decision.Fast true)

let test_decision_fast_abort () =
  Alcotest.(check bool) "3 abort = fast abort" true
    (ev
       [|
         Some Txn.Validated_abort; Some Txn.Validated_abort; Some Txn.Validated_abort;
       |]
    = Decision.Fast false)

let test_decision_two_ok_waits_for_third () =
  (* With n=3 the fast quorum is 3; two matching replies leave the
     fast path still possible, so the coordinator waits. *)
  Alcotest.(check bool) "2 ok waits" true
    (ev [| Some Txn.Validated_ok; Some Txn.Validated_ok; None |] = Decision.Wait)

let test_decision_split_goes_slow () =
  (* One ok + one abort: the fast path is impossible, a majority has
     answered; only 1 < f+1 ok so the proposal is abort. *)
  Alcotest.(check bool) "1-1 split proposes abort" true
    (ev [| Some Txn.Validated_ok; Some Txn.Validated_abort; None |]
    = Decision.Slow false)

let test_decision_majority_ok_slow_commit () =
  Alcotest.(check bool) "2 ok 1 abort proposes commit" true
    (ev
       [| Some Txn.Validated_ok; Some Txn.Validated_ok; Some Txn.Validated_abort |]
    = Decision.Slow true)

let test_decision_final_short_circuits () =
  Alcotest.(check bool) "committed reply ends it" true
    (ev [| Some Txn.Committed; None; None |] = Decision.Final true);
  Alcotest.(check bool) "aborted reply ends it" true
    (ev [| Some Txn.Aborted; Some Txn.Validated_ok; None |] = Decision.Final false)

let test_decision_accepted_replies_dont_count () =
  (* Accepted_* replies are a backup coordinator's business; they are
     neither VALIDATED votes nor final. *)
  Alcotest.(check bool) "accepted alone waits" true
    (ev [| Some Txn.Accepted_commit; Some Txn.Accepted_commit; None |] = Decision.Wait)

let test_decision_n5_fast_possible_waits () =
  let q5 = Quorum.create ~n:5 in
  let ev5 replies = Decision.evaluate ~quorum:q5 ~replies in
  (* 3 ok, 1 abort, 1 outstanding: fast (4 ok) still possible. *)
  Alcotest.(check bool) "waits while fast possible" true
    (ev5
       [|
         Some Txn.Validated_ok;
         Some Txn.Validated_ok;
         Some Txn.Validated_ok;
         Some Txn.Validated_abort;
         None;
       |]
    = Decision.Wait);
  (* 3 ok, 2 abort: fast impossible, majority ok -> slow commit. *)
  Alcotest.(check bool) "slow commit" true
    (ev5
       [|
         Some Txn.Validated_ok;
         Some Txn.Validated_ok;
         Some Txn.Validated_ok;
         Some Txn.Validated_abort;
         Some Txn.Validated_abort;
       |]
    = Decision.Slow true);
  (* 4 ok: fast commit even with 1 abort. *)
  Alcotest.(check bool) "fast commit with one dissent" true
    (ev5
       [|
         Some Txn.Validated_ok;
         Some Txn.Validated_ok;
         Some Txn.Validated_ok;
         Some Txn.Validated_ok;
         Some Txn.Validated_abort;
       |]
    = Decision.Fast true)

let () =
  Alcotest.run "quorum"
    [
      ( "sizes",
        [
          Alcotest.test_case "majority/fast per n" `Quick test_quorum_sizes;
          Alcotest.test_case "of_f" `Quick test_quorum_of_f;
          Alcotest.test_case "input validation" `Quick test_quorum_validation;
          Alcotest.test_case "fast is a supermajority" `Quick
            test_fast_quorum_is_supermajority;
          Alcotest.test_case "recovery intersection bound" `Quick
            test_fast_quorum_intersection_property;
        ] );
      ( "decision",
        [
          Alcotest.test_case "waits with no replies" `Quick test_decision_wait_no_replies;
          Alcotest.test_case "waits with one ok" `Quick test_decision_wait_one_ok;
          Alcotest.test_case "fast commit" `Quick test_decision_fast_commit;
          Alcotest.test_case "fast abort" `Quick test_decision_fast_abort;
          Alcotest.test_case "two ok still waits (n=3)" `Quick
            test_decision_two_ok_waits_for_third;
          Alcotest.test_case "split proposes abort" `Quick test_decision_split_goes_slow;
          Alcotest.test_case "majority ok proposes commit" `Quick
            test_decision_majority_ok_slow_commit;
          Alcotest.test_case "final reply short-circuits" `Quick
            test_decision_final_short_circuits;
          Alcotest.test_case "accepted replies don't vote" `Quick
            test_decision_accepted_replies_dont_count;
          Alcotest.test_case "n=5 cases" `Quick test_decision_n5_fast_possible_waits;
        ] );
    ]
