(* The Figure 1 microbenchmark system. *)

module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Intf = Mk_model.System_intf
module KV = Mk_kvbench.Kv_system

let make ?(cfg = KV.default_config) () =
  let engine = Engine.create ~seed:cfg.KV.seed () in
  (engine, KV.create engine cfg)

let put sys ~key ~value ~on_done =
  KV.submit sys ~client:0 { Intf.reads = [||]; writes = [| (key, value) |] } ~on_done

let test_put_stores () =
  let engine, sys = make () in
  let done_ = ref false in
  put sys ~key:7 ~value:42 ~on_done:(fun ~committed ->
      Alcotest.(check bool) "committed" true committed;
      done_ := true);
  Engine.run engine;
  Alcotest.(check bool) "done" true !done_;
  Alcotest.(check (option int)) "stored" (Some 42) (KV.get sys ~key:7);
  Alcotest.(check int) "puts counted" 1 (KV.puts sys)

let test_multi_put_single_reply () =
  let engine, sys = make () in
  let replies = ref 0 in
  KV.submit sys ~client:0
    { Intf.reads = [||]; writes = [| (1, 1); (2, 2); (3, 3) |] }
    ~on_done:(fun ~committed:_ -> incr replies);
  Engine.run engine;
  Alcotest.(check int) "one reply" 1 !replies;
  Alcotest.(check int) "three puts" 3 (KV.puts sys);
  Alcotest.(check (option int)) "key 2" (Some 2) (KV.get sys ~key:2)

let test_empty_request_commits () =
  let engine, sys = make () in
  let done_ = ref false in
  KV.submit sys ~client:0 { Intf.reads = [||]; writes = [||] }
    ~on_done:(fun ~committed -> done_ := committed);
  Engine.run engine;
  Alcotest.(check bool) "empty commits" true !done_

let test_counter_counts_when_enabled () =
  let cfg = { KV.default_config with atomic_counter = true } in
  let engine, sys = make ~cfg () in
  for i = 0 to 9 do
    put sys ~key:i ~value:i ~on_done:(fun ~committed:_ -> ())
  done;
  Engine.run engine;
  Alcotest.(check int) "counter tracked every put" 10 (KV.counter_value sys);
  Alcotest.(check int) "puts" 10 (KV.puts sys)

let test_counter_off_by_default () =
  let engine, sys = make () in
  put sys ~key:0 ~value:0 ~on_done:(fun ~committed:_ -> ());
  Engine.run engine;
  Alcotest.(check int) "no counter" 0 (KV.counter_value sys)

let test_name_reflects_config () =
  let _, e = make ~cfg:{ KV.default_config with transport = Transport.erpc } () in
  Alcotest.(check string) "erpc" "eRPC" (KV.name e);
  let _, u =
    make
      ~cfg:{ KV.default_config with transport = Transport.udp; atomic_counter = true }
      ()
  in
  Alcotest.(check string) "udp+counter" "UDP+counter" (KV.name u)

(* The Fig. 1 relationships, in miniature: same offered load, four
   configurations. *)
let throughput ~transport ~atomic_counter ~threads =
  let cfg = { KV.default_config with transport; atomic_counter; threads } in
  let engine, sys = make ~cfg () in
  (* Closed loop: 32*threads outstanding single-PUT clients. *)
  let horizon = 3000.0 in
  let rec client i =
    put sys ~key:(i mod 1024) ~value:i ~on_done:(fun ~committed:_ ->
        if Engine.now engine < horizon then client (i + 7))
  in
  for i = 0 to (32 * threads) - 1 do
    client i
  done;
  Engine.run ~until:horizon engine;
  float_of_int (KV.puts sys) /. horizon

let test_fig1_relationships () =
  let threads = 8 in
  let erpc = throughput ~transport:Transport.erpc ~atomic_counter:false ~threads in
  let erpc_ctr = throughput ~transport:Transport.erpc ~atomic_counter:true ~threads in
  let udp = throughput ~transport:Transport.udp ~atomic_counter:false ~threads in
  let udp_ctr = throughput ~transport:Transport.udp ~atomic_counter:true ~threads in
  Alcotest.(check bool) "eRPC >> UDP" true (erpc > 4.0 *. udp);
  (* At 8 threads the counter is not yet the eRPC bottleneck but costs
     a little; for UDP it is invisible. *)
  Alcotest.(check bool) "counter never helps" true (erpc_ctr <= erpc +. 0.01);
  Alcotest.(check bool) "counter invisible on UDP" true
    (abs_float (udp -. udp_ctr) /. udp < 0.05)

let test_fig1_counter_cap () =
  (* At 20 threads the shared counter must cap eRPC hard: throughput
     with the counter stays near 1/hold regardless of threads. *)
  let t20 = throughput ~transport:Transport.erpc ~atomic_counter:true ~threads:20 in
  let t14 = throughput ~transport:Transport.erpc ~atomic_counter:true ~threads:14 in
  let cap = 1.0 /. Mk_model.Costs.default.Mk_model.Costs.atomic_counter in
  Alcotest.(check bool) "near the 1/hold cap" true (t20 < cap *. 1.05);
  (* Scaling has flattened: 20 threads buy little over 14. *)
  Alcotest.(check bool) "flattened" true (t20 -. t14 < 0.35 *. t14)

let test_busy_fraction_sane () =
  let engine, sys = make () in
  for i = 0 to 99 do
    put sys ~key:i ~value:i ~on_done:(fun ~committed:_ -> ())
  done;
  Engine.run engine;
  let busy = KV.server_busy_fraction sys in
  Alcotest.(check bool) "in [0,1]" true (busy > 0.0 && busy <= 1.0)

let () =
  Alcotest.run "kvbench"
    [
      ( "basics",
        [
          Alcotest.test_case "put stores" `Quick test_put_stores;
          Alcotest.test_case "multi-put, one reply" `Quick test_multi_put_single_reply;
          Alcotest.test_case "empty request" `Quick test_empty_request_commits;
          Alcotest.test_case "counter on" `Quick test_counter_counts_when_enabled;
          Alcotest.test_case "counter off" `Quick test_counter_off_by_default;
          Alcotest.test_case "names" `Quick test_name_reflects_config;
          Alcotest.test_case "busy fraction" `Quick test_busy_fraction_sane;
        ] );
      ( "figure-1",
        [
          Alcotest.test_case "transport relationships" `Quick test_fig1_relationships;
          Alcotest.test_case "counter caps eRPC" `Quick test_fig1_counter_cap;
        ] );
    ]
