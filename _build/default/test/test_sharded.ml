(* Distributed transactions across partitioned Meerkat groups
   (§5.2.4). *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Cluster = Mk_cluster.Cluster
module Sharded = Mk_meerkat.Sharded

let base_cfg =
  { Cluster.default_config with threads = 2; n_clients = 8; keys = 64; seed = 3 }

let make ?(partitions = 2) ?(cfg = base_cfg) () =
  let engine = Engine.create ~seed:cfg.Cluster.seed () in
  (engine, Sharded.create engine ~partitions cfg)

let drive engine sys ~clients ~per_client ~request =
  let outcomes = ref [] in
  let rec loop c remaining =
    if remaining > 0 then
      Sharded.submit sys ~client:c (request c remaining) ~on_done:(fun ~committed ->
          outcomes := committed :: !outcomes;
          loop c (remaining - 1))
  in
  for c = 0 to clients - 1 do
    loop c per_client
  done;
  Engine.run ~max_events:20_000_000 engine;
  !outcomes

let test_key_ownership () =
  let _, sys = make ~partitions:3 () in
  Alcotest.(check int) "partitions" 3 (Sharded.partitions sys);
  Alcotest.(check int) "key 4 owner" 1 (Sharded.partition_of_key sys 4);
  Alcotest.(check int) "key 6 owner" 0 (Sharded.partition_of_key sys 6)

let test_single_partition_txn () =
  let engine, sys = make () in
  let result = ref None in
  (* Keys 0 and 2 both live in partition 0. *)
  Sharded.submit sys ~client:0
    { Intf.reads = [| 0; 2 |]; writes = [| (0, 5) |] }
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "committed" (Some true) !result;
  Alcotest.(check (option int)) "applied" (Some 5)
    (Sharded.read_committed sys ~replica:0 ~key:0)

let test_cross_partition_txn () =
  let engine, sys = make () in
  let result = ref None in
  (* Keys 0 (partition 0) and 1 (partition 1): a genuinely distributed
     transaction. *)
  Sharded.submit sys ~client:0
    { Intf.reads = [| 0; 1 |]; writes = [| (0, 10); (1, 11) |] }
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "committed" (Some true) !result;
  (* Both partitions applied their half, on every replica. *)
  for replica = 0 to 2 do
    Alcotest.(check (option int)) "partition 0 half" (Some 10)
      (Sharded.read_committed sys ~replica ~key:0);
    Alcotest.(check (option int)) "partition 1 half" (Some 11)
      (Sharded.read_committed sys ~replica ~key:1)
  done

let test_atomicity_across_partitions () =
  (* Many racing cross-partition transactions, each writing the SAME
     value tag to one key in partition 0 and one key in partition 1.
     Atomicity means: for every tag committed on one side, the other
     side committed it too (observable as: final values of the pair
     (key0, key1) written by the same transaction must both be from
     committed transactions; we verify via the per-group trecords). *)
  let cfg = { base_cfg with keys = 4; n_clients = 8 } in
  let engine, sys = make ~cfg () in
  ignore
    (drive engine sys ~clients:8 ~per_client:20 ~request:(fun c i ->
         let tag = (c * 1000) + i in
         (* keys 0/2 are partition 0; 1/3 partition 1 *)
         let k0 = if (c + i) mod 2 = 0 then 0 else 2 in
         let k1 = if (c + i) mod 3 = 0 then 1 else 3 in
         { Intf.reads = [| k0; k1 |]; writes = [| (k0, tag); (k1, tag) |] }));
  (* Every tid must have the same final status in both groups'
     trecords (when present in both). *)
  let module Replica = Mk_meerkat.Replica in
  let module Trecord = Mk_storage.Trecord in
  let module Txn = Mk_storage.Txn in
  let status_table group =
    let table = Hashtbl.create 256 in
    Array.iter
      (fun r ->
        List.iter
          (fun (_, (e : Trecord.entry)) ->
            if Txn.is_final e.status then
              Hashtbl.replace table e.txn.Txn.tid e.status)
          (Trecord.entries (Replica.trecord r)))
      (Mk_meerkat.Sim_system.replicas (Sharded.group sys group));
    table
  in
  let t0 = status_table 0 and t1 = status_table 1 in
  let compared = ref 0 in
  Hashtbl.iter
    (fun tid status0 ->
      match Hashtbl.find_opt t1 tid with
      | Some status1 ->
          incr compared;
          Alcotest.(check bool)
            (Format.asprintf "tid %a same fate" Mk_clock.Timestamp.Tid.pp tid)
            true (status0 = status1)
      | None -> ())
    t0;
  Alcotest.(check bool) "cross-partition txns compared" true (!compared > 50)

let test_contention_aborts_and_progress () =
  let cfg = { base_cfg with keys = 4 } in
  let engine, sys = make ~cfg () in
  let outcomes =
    drive engine sys ~clients:8 ~per_client:20 ~request:(fun c i ->
        let k = (c + i) mod 4 in
        { Intf.reads = [| k |]; writes = [| (k, i) |] })
  in
  Alcotest.(check int) "all decided" 160 (List.length outcomes);
  let counters = Sharded.counters sys in
  Alcotest.(check int) "accounting adds up" 160
    (counters.Intf.committed + counters.Intf.aborted)

let test_interactive_cross_partition_conservation () =
  (* Shared counters on both partitions, incremented together by an
     interactive cross-partition transaction: after the dust settles
     the two totals must be equal on every replica. *)
  let cfg = { base_cfg with keys = 4; n_clients = 6 } in
  let engine, sys = make ~cfg () in
  let commits = ref 0 in
  let rec bump c remaining =
    if remaining > 0 then
      Sharded.submit_interactive sys ~client:c ~reads:[| 0; 1 |]
        ~compute:(fun values -> [| (0, values.(0) + 1); (1, values.(1) + 1) |])
        ~on_done:(fun ~committed ->
          if committed then begin
            incr commits;
            bump c (remaining - 1)
          end
          else bump c remaining)
  in
  for c = 0 to 5 do
    bump c 8
  done;
  Engine.run ~max_events:20_000_000 engine;
  Alcotest.(check int) "all committed eventually" 48 !commits;
  for replica = 0 to 2 do
    Alcotest.(check (option int)) "partition-0 counter" (Some 48)
      (Sharded.read_committed sys ~replica ~key:0);
    Alcotest.(check (option int)) "partition-1 counter" (Some 48)
      (Sharded.read_committed sys ~replica ~key:1)
  done

let test_many_partitions () =
  let engine, sys = make ~partitions:4 ~cfg:{ base_cfg with keys = 64 } () in
  let result = ref None in
  (* Touch all four partitions in one transaction. *)
  Sharded.submit sys ~client:0
    { Intf.reads = [| 0; 1; 2; 3 |]; writes = [| (0, 1); (1, 1); (2, 1); (3, 1) |] }
    ~on_done:(fun ~committed -> result := Some committed);
  Engine.run engine;
  Alcotest.(check (option bool)) "4-partition txn commits" (Some true) !result;
  for key = 0 to 3 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" key)
      (Some 1)
      (Sharded.read_committed sys ~replica:1 ~key)
  done

let () =
  Alcotest.run "sharded"
    [
      ( "distributed-txns",
        [
          Alcotest.test_case "key ownership" `Quick test_key_ownership;
          Alcotest.test_case "single-partition txn" `Quick test_single_partition_txn;
          Alcotest.test_case "cross-partition txn" `Quick test_cross_partition_txn;
          Alcotest.test_case "atomicity across partitions" `Quick
            test_atomicity_across_partitions;
          Alcotest.test_case "contention and accounting" `Quick
            test_contention_aborts_and_progress;
          Alcotest.test_case "four partitions" `Quick test_many_partitions;
          Alcotest.test_case "interactive cross-partition conservation" `Quick
            test_interactive_cross_partition_conservation;
        ] );
    ]
