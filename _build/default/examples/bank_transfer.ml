(* Bank transfers: the classic serializability stress. A fixed pool of
   accounts, each starting with 100; concurrent clients move random
   amounts between random pairs of accounts, retrying on abort. If the
   system is serializable, the total balance never changes — on any
   replica.

   This uses the interactive-transaction API: the write values are
   computed *from* the values the execute phase read, and OCC
   validation guarantees a commit means those reads were current as of
   the transaction's timestamp.

   Run with: dune exec examples/bank_transfer.exe *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Meerkat = Mk_meerkat.Sim_system
module Rng = Mk_util.Rng

let accounts = 32
let initial_balance = 100
let transfers_per_client = 150
let clients = 8

let () =
  let engine = Engine.create ~seed:7 () in
  let cfg =
    { Meerkat.default_config with threads = 4; n_clients = clients; keys = accounts }
  in
  let cluster = Meerkat.create engine cfg in

  (* Deposit opening balances (blind writes). *)
  let opened = ref 0 in
  for account = 0 to accounts - 1 do
    Meerkat.submit cluster ~client:0
      { Intf.reads = [||]; writes = [| (account, initial_balance) |] }
      ~on_done:(fun ~committed -> if committed then incr opened)
  done;
  Engine.run engine;
  Format.printf "Opened %d accounts with %d each (total %d).@." !opened
    initial_balance (accounts * initial_balance);

  let committed_transfers = ref 0 and aborted_attempts = ref 0 in
  let skipped_poor = ref 0 in
  let rng = Rng.create ~seed:99 in
  let rec transfer client remaining =
    if remaining > 0 then begin
      let from_acct = Rng.int rng accounts in
      let to_acct = (from_acct + 1 + Rng.int rng (accounts - 1)) mod accounts in
      let amount = 1 + Rng.int rng 10 in
      Meerkat.submit_interactive cluster ~client
        ~reads:[| from_acct; to_acct |]
        ~compute:(fun balances ->
          if balances.(0) < amount then [||] (* insufficient funds: no-op *)
          else
            [| (from_acct, balances.(0) - amount); (to_acct, balances.(1) + amount) |])
        ~on_done:(fun ~committed ->
          if committed then begin
            incr committed_transfers;
            transfer client (remaining - 1)
          end
          else begin
            incr aborted_attempts;
            (* OCC rejected us: somebody else touched the accounts
               between our reads and validation. Retry afresh. *)
            transfer client remaining
          end)
    end
  in
  ignore skipped_poor;
  for c = 0 to clients - 1 do
    transfer c transfers_per_client
  done;
  Engine.run engine;

  Format.printf "@.%d transfers committed; %d attempts aborted and retried.@."
    !committed_transfers !aborted_attempts;
  let expected = accounts * initial_balance in
  List.iter
    (fun replica ->
      let total = ref 0 in
      for account = 0 to accounts - 1 do
        match Meerkat.read_committed cluster ~replica ~key:account with
        | Some v -> total := !total + v
        | None -> ()
      done;
      Format.printf "Replica %d total balance: %d (%s)@." replica !total
        (if !total = expected then "conserved" else "VIOLATION"))
    [ 0; 1; 2 ];
  Format.printf
    "@.Money is conserved on every replica despite the OCC aborts:@.\
     conflicting transfers were rejected whole, never half-applied.@."
