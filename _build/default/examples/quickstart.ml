(* Quickstart: bring up a 3-replica Meerkat cluster, run a handful of
   transactions through the public API, and look at what the protocol
   did.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Meerkat = Mk_meerkat.Sim_system

let () =
  (* 1. A deterministic simulation engine and a cluster: 3 replicas,
     4 server threads each, 1024 keys preloaded with 0. *)
  let engine = Engine.create ~seed:42 () in
  let cfg =
    { Meerkat.default_config with threads = 4; n_clients = 4; keys = 1024 }
  in
  let cluster = Meerkat.create engine cfg in
  Format.printf "Meerkat cluster: %d replicas x %d threads, %d keys@."
    cfg.Meerkat.n_replicas cfg.Meerkat.threads cfg.Meerkat.keys;

  (* 2. A transaction is a set of keys to read plus key/value pairs to
     write. The coordinator (client 0) executes it: reads go to any
     replica, then the commit protocol validates at all of them. *)
  let submit ~client reads writes =
    Meerkat.submit cluster ~client
      { Intf.reads = Array.of_list reads; writes = Array.of_list writes }
      ~on_done:(fun ~committed ->
        Format.printf "  txn reads=%s writes=%s -> %s@."
          (String.concat "," (List.map string_of_int reads))
          (String.concat ","
             (List.map (fun (k, v) -> Printf.sprintf "%d:=%d" k v) writes))
          (if committed then "COMMITTED" else "ABORTED"))
  in

  Format.printf "@.Running three independent transactions:@.";
  submit ~client:0 [ 1 ] [ (1, 100) ];
  submit ~client:1 [ 2 ] [ (2, 200) ];
  submit ~client:2 [] [ (3, 300) ];
  Engine.run engine;

  (* 3. Read-your-writes through a fresh transaction. *)
  Format.printf "@.Reading key 1 back transactionally:@.";
  Meerkat.submit cluster ~client:0
    { Intf.reads = [| 1 |]; writes = [||] }
    ~on_done:(fun ~committed ->
      Format.printf "  read-only txn %s@." (if committed then "committed" else "aborted"));
  Engine.run engine;

  (* 4. Two deliberately conflicting transactions: both read key 7 at
     the same version and try to write it. One must abort. *)
  Format.printf "@.Two clients race on key 7:@.";
  submit ~client:0 [ 7 ] [ (7, 777) ];
  submit ~client:1 [ 7 ] [ (7, 888) ];
  Engine.run engine;

  (* 5. What the protocol did, and what the replicas now hold. *)
  let counters = Meerkat.counters cluster in
  Format.printf
    "@.Protocol counters: %d committed, %d aborted, %d fast-path, %d slow-path@."
    counters.Intf.committed counters.Intf.aborted counters.Intf.fast_path
    counters.Intf.slow_path;
  Format.printf "Replica stores (key -> value):@.";
  List.iter
    (fun key ->
      let values =
        List.map
          (fun replica ->
            match Meerkat.read_committed cluster ~replica ~key with
            | Some v -> string_of_int v
            | None -> "-")
          [ 0; 1; 2 ]
      in
      Format.printf "  key %d: [%s]@." key (String.concat "; " values))
    [ 1; 2; 3; 7 ];
  Format.printf
    "@.All replicas agree without any replica-to-replica message: the@.\
     coordinator's supermajority fast path did all the work (ZCP).@."
