examples/quickstart.mli:
