examples/retwis_app.ml: Format List Mk_harness Mk_meerkat Mk_model Mk_sim Mk_util Mk_workload
