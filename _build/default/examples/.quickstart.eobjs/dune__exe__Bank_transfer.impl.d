examples/bank_transfer.ml: Array Format List Mk_meerkat Mk_model Mk_sim Mk_util
