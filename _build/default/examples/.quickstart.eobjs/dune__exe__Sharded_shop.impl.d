examples/sharded_shop.ml: Array Format Mk_cluster Mk_meerkat Mk_model Mk_sim Mk_util Option
