examples/retwis_app.mli:
