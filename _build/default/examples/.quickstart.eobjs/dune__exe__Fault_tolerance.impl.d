examples/fault_tolerance.ml: Array Format List Mk_clock Mk_meerkat Mk_model Mk_sim Mk_storage
