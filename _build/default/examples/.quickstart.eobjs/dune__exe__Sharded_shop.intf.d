examples/sharded_shop.mli:
