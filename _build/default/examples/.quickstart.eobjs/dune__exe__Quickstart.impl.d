examples/quickstart.ml: Array Format List Mk_meerkat Mk_model Mk_sim Printf String
