(** The interface every simulated storage system exposes to the
    benchmark harness.

    A transaction request carries the keys to read and the key/value
    pairs to write; the system executes the interactive
    execute/validate/write lifecycle (reads first, buffered writes,
    then its own commit protocol) and reports whether the transaction
    committed. The harness owns closed-loop clients and retry
    policy. *)

type txn_request = { reads : int array; writes : (int * int) array }

(** Per-run protocol counters, aggregated across replicas. *)
type counters = {
  committed : int;
  aborted : int;
  fast_path : int;  (** Transactions decided on the fast path. *)
  slow_path : int;  (** Transactions that needed the accept round. *)
  retransmits : int;
}

module type SYSTEM = sig
  type t

  val name : t -> string

  val threads : t -> int
  (** Server threads per replica (the x-axis of Figs. 4 and 5). *)

  val submit :
    t -> client:int -> txn_request -> on_done:(committed:bool -> unit) -> unit
  (** Run one transaction attempt on behalf of client [client]
      (0-based, must be < the system's configured client count).
      [on_done] fires exactly once, when the coordinator learns the
      outcome. *)

  val counters : t -> counters
end

type packed = Packed : (module SYSTEM with type t = 'a) * 'a -> packed

let zero_counters =
  { committed = 0; aborted = 0; fast_path = 0; slow_path = 0; retransmits = 0 }
