lib/model/costs.ml: Format
