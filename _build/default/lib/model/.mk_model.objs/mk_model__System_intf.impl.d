lib/model/system_intf.ml:
