lib/model/costs.mli: Format
