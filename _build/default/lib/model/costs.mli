(** CPU cost model for server-side request handlers, in microseconds.

    These constants play the role of the paper's hardware: they fix
    how much core time each protocol step consumes on a 2 GHz Xeon
    Gold 6138 with the paper's 64-byte keys and values. They were
    calibrated so the simulated Meerkat lands near the paper's
    absolute numbers (~8.3 M YCSB-T txn/s at 80 threads, ~2.7 M Retwis
    txn/s); every comparative result then *emerges* from the protocols
    rather than being baked in. The shared-structure critical sections
    are the knobs that reproduce the paper's reported bottlenecks:
    KuaFu++'s shared log caps it near 0.6 M txn/s and TAPIR's shared
    record near 0.8 M txn/s, independent of core count. *)

type t = {
  get : float;  (** Serve one versioned GET (hash probe + copy). *)
  validate_base : float;  (** Fixed part of an OCC validation. *)
  validate_per_key : float;
      (** Per read/write-set element: per-key lock, timestamp checks,
          reader/writer bookkeeping. *)
  commit_base : float;  (** Fixed part of the write phase. *)
  commit_per_write : float;  (** Install one version. *)
  accept : float;  (** Handle a slow-path accept. *)
  put : float;  (** Figure-1 microbenchmark PUT handler. *)
  atomic_counter : float;
      (** Critical section of a shared atomic fetch-and-add: the
          cache-line ping-pong serializes all cores (~11 M op/s cap in
          Fig. 1). *)
  shared_log : float;
      (** Critical section of one shared-log append/consume
          (KuaFu++). *)
  record_mutex : float;
      (** Critical section of one shared-trecord access under a
          std::mutex (TAPIR prototype). *)
  pb_replication : float;
      (** Extra primary CPU per transaction in primary-backup designs:
          marshalling the replication fan-out and processing backup
          acks (Meerkat-PB, KuaFu++ primaries). *)
}

val default : t
val pp : Format.formatter -> t -> unit

val validate : t -> nkeys:int -> float
(** Cost of validating a transaction touching [nkeys] read+write set
    elements. *)

val commit : t -> nwrites:int -> float
(** Cost of the write phase for [nwrites] installed versions. *)
