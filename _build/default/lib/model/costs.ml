type t = {
  get : float;
  validate_base : float;
  validate_per_key : float;
  commit_base : float;
  commit_per_write : float;
  accept : float;
  put : float;
  atomic_counter : float;
  shared_log : float;
  record_mutex : float;
  pb_replication : float;
}

let default =
  {
    get = 2.3;
    validate_base = 1.6;
    validate_per_key = 2.0;
    commit_base = 0.9;
    commit_per_write = 1.5;
    accept = 0.8;
    put = 1.0;
    atomic_counter = 0.09;
    shared_log = 1.5;
    record_mutex = 0.6;
    pb_replication = 3.0;
  }

let validate t ~nkeys = t.validate_base +. (t.validate_per_key *. float_of_int nkeys)
let commit t ~nwrites = t.commit_base +. (t.commit_per_write *. float_of_int nwrites)

let pp ppf t =
  Format.fprintf ppf
    "get=%.2f validate=%.2f+%.2f/key commit=%.2f+%.2f/w accept=%.2f put=%.2f \
     atomic=%.3f log=%.2f recmtx=%.2f pbrep=%.2f"
    t.get t.validate_base t.validate_per_key t.commit_base t.commit_per_write t.accept
    t.put t.atomic_counter t.shared_log t.record_mutex t.pb_replication
