(** Streaming statistics used by the measurement harness. *)

type t
(** Running mean/variance/min/max accumulator (Welford's algorithm). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val merge : t -> t -> t
(** [merge a b] is the accumulator for the union of both samples. *)

val percentile : float array -> float -> float
(** [percentile samples p] with [p] in \[0, 100\], linear
    interpolation; sorts a copy of [samples].
    @raise Invalid_argument on an empty array. *)
