(** Fixed-resolution latency histogram (log-scaled buckets).

    Records microsecond-scale latencies with bounded memory and gives
    approximate percentiles good enough for the harness reports. *)

type t

val create : unit -> t
(** Buckets cover \[0.01 µs, ~1 s) with ~4% relative resolution. *)

val add : t -> float -> unit
(** [add t v] records a non-negative value (values are clamped into
    the covered range). *)

val count : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** Approximate percentile (bucket midpoint), [p] in \[0, 100\].
    Returns [nan] on an empty histogram. *)

val merge_into : dst:t -> src:t -> unit
