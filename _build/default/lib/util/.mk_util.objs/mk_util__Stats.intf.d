lib/util/stats.mli:
