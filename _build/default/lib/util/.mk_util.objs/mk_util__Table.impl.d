lib/util/table.ml: Array Buffer List Stdlib String
