lib/util/heap.mli:
