lib/util/rng.mli:
