lib/util/histogram.mli:
