lib/util/table.mli:
