(** Deterministic pseudo-random number generation.

    The simulator must be reproducible: every run with the same seed
    produces the same event sequence. We therefore avoid the global
    [Random] state and thread explicit generators everywhere. The
    generator is xoshiro256** seeded via splitmix64, following the
    reference implementation of Blackman and Vigna. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Generators
    with distinct seeds produce independent-looking streams. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing
    [t]. Used to give each simulated client/replica its own stream so
    adding an entity does not perturb the others. *)

val copy : t -> t
(** [copy t] duplicates the current state of [t]. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val uniform : t -> float
(** [uniform t] is uniform in \[0, 1). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed variate with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
