type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri
      (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
      row
  in
  List.iter note_widths all;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        (* Pad all but the last column. *)
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)
