(** Plain-text table rendering for benchmark and example output. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
val render : t -> string
(** Column-aligned rendering with a header separator. *)

val print : t -> unit
