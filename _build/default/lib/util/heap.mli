(** Array-backed binary min-heap, the event queue of the simulator.

    Elements are ordered by a user-supplied comparison. The heap is
    not stable by itself; callers that need FIFO tie-breaking (the
    event queue does, for determinism) must fold a sequence number
    into their comparison. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val peek : 'a t -> 'a option

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of contents in unspecified order (for testing). *)
