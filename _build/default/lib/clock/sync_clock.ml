type t = { offset : float; drift : float }

let create ~offset ~drift = { offset; drift }
let perfect = { offset = 0.0; drift = 0.0 }

let random rng ~max_offset ~max_drift =
  let sym r bound = Mk_util.Rng.float r (2.0 *. bound) -. bound in
  { offset = sym rng max_offset; drift = sym rng max_drift }

let read t ~now = (now *. (1.0 +. t.drift)) +. t.offset
let offset t = t.offset
let drift t = t.drift
