lib/clock/sync_clock.ml: Mk_util
