lib/clock/sync_clock.mli: Mk_util
