lib/clock/timestamp.ml: Float Format Int Set
