lib/clock/timestamp.mli: Format Set
