(** Loosely synchronized per-client clocks (§3).

    Meerkat needs clock synchronization only for performance, never
    for correctness: a skewed clock merely proposes timestamps that
    are more likely to lose OCC validation. Each simulated client gets
    a clock with a fixed offset and a drift rate relative to simulated
    time; PTP-grade sync (the paper's setup) corresponds to small
    offsets. *)

type t

val create : offset:float -> drift:float -> t
(** [create ~offset ~drift]: reading at true time [now] returns
    [now *. (1. +. drift) +. offset] microseconds. *)

val perfect : t
(** Zero offset, zero drift. *)

val random : Mk_util.Rng.t -> max_offset:float -> max_drift:float -> t
(** Offset uniform in \[-max_offset, max_offset\], drift uniform in
    \[-max_drift, max_drift\]. *)

val read : t -> now:float -> float
(** Monotone in [now] for drift > -1; the protocol additionally
    enforces per-client timestamp monotonicity at the coordinator. *)

val offset : t -> float
val drift : t -> float
