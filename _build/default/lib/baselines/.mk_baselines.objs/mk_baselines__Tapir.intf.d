lib/baselines/tapir.mli: Mk_cluster Mk_model Mk_sim
