lib/baselines/kuafupp.ml: Array Mk_clock Mk_cluster Mk_meerkat Mk_model Mk_net Mk_sim Mk_storage Mk_util Printf
