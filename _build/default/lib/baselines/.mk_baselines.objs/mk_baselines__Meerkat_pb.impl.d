lib/baselines/meerkat_pb.ml: Array Mk_clock Mk_cluster Mk_meerkat Mk_model Mk_net Mk_sim Mk_storage
