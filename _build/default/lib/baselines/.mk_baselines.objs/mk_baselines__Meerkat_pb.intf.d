lib/baselines/meerkat_pb.mli: Mk_cluster Mk_model Mk_sim
