lib/baselines/kuafupp.mli: Mk_cluster Mk_model Mk_sim
