(** Benchmark workload generators (§6.2).

    A workload is a stream of transaction requests (read keys plus
    write key/value pairs) over a keyspace, with key popularity
    following a Zipf distribution. Following the paper's methodology,
    the database is sized at [keys_per_core × total threads] so that
    the contention level stays constant as the system scales. *)

type t

val name : t -> string
val keys : t -> int

val next : t -> Mk_model.System_intf.txn_request
(** Generate the next transaction request. Keys within one request
    are distinct. *)

val ycsb_t : rng:Mk_util.Rng.t -> keys:int -> theta:float -> t
(** YCSB-T, transactional YCSB workload F: each transaction is a
    single read-modify-write on one key — short transactions with an
    even read/write mix (Fig. 4, 6a, 7a). *)

val retwis : rng:Mk_util.Rng.t -> keys:int -> theta:float -> t
(** Retwis (Table 2): a Twitter-like mix of longer, read-heavy
    transactions —

    - 5%  Add User          (1 get, 3 puts)
    - 15% Follow/Unfollow   (2 gets, 2 puts)
    - 30% Post Tweet        (3 gets, 5 puts)
    - 50% Load Timeline     (rand(1,10) gets, 0 puts). *)

val read_only : rng:Mk_util.Rng.t -> keys:int -> theta:float -> nreads:int -> t
(** Pure reader workload, used by tests. *)

val write_only : rng:Mk_util.Rng.t -> keys:int -> theta:float -> nwrites:int -> t
(** Blind-writer workload, used by tests (exercises the Thomas write
    rule). *)

val mix_report : t -> (string * int) list
(** Count of generated transactions by type name (verifies Table 2's
    mix in the benches). *)
