type t = {
  rng : Mk_util.Rng.t;
  n : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
  stride : int;  (** 1 when scrambling is off. *)
}

let zeta ~n ~theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int i ** theta))
  done;
  !acc

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* A stride coprime with n gives a bijection r -> r*stride mod n that
   scatters consecutive ranks across the keyspace. *)
let scatter_stride n =
  if n <= 2 then 1
  else begin
    let rec fix s = if gcd s n = 1 then s else fix (s + 1) in
    fix ((int_of_float (0.6180339887 *. float_of_int n) lor 1) mod n |> max 1)
  end

let create ?(scramble = true) ~rng ~n ~theta () =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then invalid_arg "Zipf.create: theta must be in [0,1)";
  let zetan = if theta = 0.0 then float_of_int n else zeta ~n ~theta in
  let zeta2 = if theta = 0.0 then 2.0 else zeta ~n:(min n 2) ~theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    if n = 1 then 0.0
    else
      (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan))
  in
  let stride = if scramble then scatter_stride n else 1 in
  { rng; n; theta; zetan; alpha; eta; stride }

let sample_rank t =
  if t.theta = 0.0 then Mk_util.Rng.int t.rng t.n
  else begin
    let u = Mk_util.Rng.uniform t.rng in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** t.theta) then 1
    else begin
      let r = float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha) in
      let r = int_of_float r in
      if r >= t.n then t.n - 1 else if r < 0 then 0 else r
    end
  end

let sample t = sample_rank t * t.stride mod t.n
let n t = t.n
let theta t = t.theta

let probability t ~rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if t.theta = 0.0 then 1.0 /. float_of_int t.n
  else 1.0 /. (float_of_int (rank + 1) ** t.theta) /. t.zetan
