(** Zipf-distributed key sampling (§6.2).

    The benchmarks vary a Zipf coefficient θ from 0 (uniform) past 0.9
    (highly skewed). Rank r is drawn with probability proportional to
    1/r^θ using the standard Gray et al. rejection-free inverse
    method; ranks are then scattered over the keyspace with a bijective
    hash so that hot keys are not adjacent (adjacency would create
    false sharing the paper's hash-table stores do not have). *)

type t

val create : ?scramble:bool -> rng:Mk_util.Rng.t -> n:int -> theta:float -> unit -> t
(** [create ~rng ~n ~theta ()]: sample from \[0, n). [theta] must be in
    \[0, 1); 0 gives the uniform distribution. [scramble] (default
    true) applies the rank-scattering hash. *)

val sample : t -> int
val n : t -> int
val theta : t -> float

val probability : t -> rank:int -> float
(** Exact probability of drawing the key of rank [rank] (0 = hottest);
    used by tests to cross-check the sampler. *)
