lib/workload/zipf.mli: Mk_util
