lib/workload/workload.ml: Array Mk_model Mk_util Zipf
