lib/workload/zipf.ml: Mk_util
