lib/workload/workload.mli: Mk_model Mk_util
