module Intf = Mk_model.System_intf
module Rng = Mk_util.Rng

type shape = { label : string; weight : float; gets : Rng.t -> int; puts : int }

type t = {
  name : string;
  rng : Rng.t;
  zipf : Zipf.t;
  shapes : shape array;
  cumulative : float array;
  counts : int array;
  rmw : bool;  (** Read-modify-write: read set = write set (YCSB-T). *)
  mutable next_value : int;
}

let name t = t.name
let keys t = Zipf.n t.zipf

let make ?(rmw = false) ~name ~rng ~keys ~theta shapes =
  let shapes = Array.of_list shapes in
  let total = Array.fold_left (fun acc s -> acc +. s.weight) 0.0 shapes in
  let acc = ref 0.0 in
  let cumulative =
    Array.map
      (fun s ->
        acc := !acc +. (s.weight /. total);
        !acc)
      shapes
  in
  {
    name;
    rng;
    zipf = Zipf.create ~rng ~n:keys ~theta ();
    shapes;
    cumulative;
    counts = Array.make (Array.length shapes) 0;
    rmw;
    next_value = 1;
  }

let pick_shape t =
  let u = Rng.uniform t.rng in
  let rec find i =
    if i = Array.length t.cumulative - 1 || u < t.cumulative.(i) then i
    else find (i + 1)
  in
  find 0

(* Draw [count] distinct keys; resampling terminates because workloads
   always use far fewer keys per transaction than the keyspace holds. *)
let distinct_keys t count =
  let chosen = Array.make count (-1) in
  let rec draw i =
    if i < count then begin
      let key = Zipf.sample t.zipf in
      let dup = Array.exists (fun k -> k = key) chosen in
      if dup then draw i
      else begin
        chosen.(i) <- key;
        draw (i + 1)
      end
    end
  in
  draw 0;
  chosen

let next t =
  let idx = pick_shape t in
  let shape = t.shapes.(idx) in
  t.counts.(idx) <- t.counts.(idx) + 1;
  let ngets = shape.gets t.rng in
  let value = t.next_value in
  if t.rmw then begin
    (* Read-modify-write every key of the transaction. *)
    let keys = distinct_keys t ngets in
    t.next_value <- value + ngets;
    {
      Intf.reads = keys;
      writes = Array.mapi (fun i key -> (key, value + i)) keys;
    }
  end
  else begin
    let keys = distinct_keys t (ngets + shape.puts) in
    let reads = Array.sub keys 0 ngets in
    t.next_value <- value + shape.puts;
    let writes = Array.init shape.puts (fun i -> (keys.(ngets + i), value + i)) in
    { Intf.reads; writes }
  end

let const n = fun (_ : Rng.t) -> n
let rand_range lo hi = fun rng -> lo + Rng.int rng (hi - lo + 1)

let ycsb_t ~rng ~keys ~theta =
  (* YCSB workload F, transactional: one read-modify-write — the read
     and the write hit the same key. *)
  make ~rmw:true ~name:"YCSB-T" ~rng ~keys ~theta
    [ { label = "RMW"; weight = 1.0; gets = const 1; puts = 0 } ]

let retwis ~rng ~keys ~theta =
  make ~name:"Retwis" ~rng ~keys ~theta
    [
      { label = "Add User"; weight = 0.05; gets = const 1; puts = 3 };
      { label = "Follow/Unfollow"; weight = 0.15; gets = const 2; puts = 2 };
      { label = "Post Tweet"; weight = 0.30; gets = const 3; puts = 5 };
      { label = "Load Timeline"; weight = 0.50; gets = rand_range 1 10; puts = 0 };
    ]

let read_only ~rng ~keys ~theta ~nreads =
  make ~name:"read-only" ~rng ~keys ~theta
    [ { label = "read"; weight = 1.0; gets = const nreads; puts = 0 } ]

let write_only ~rng ~keys ~theta ~nwrites =
  make ~name:"write-only" ~rng ~keys ~theta
    [ { label = "write"; weight = 1.0; gets = const 0; puts = nwrites } ]

let mix_report t =
  Array.to_list (Array.mapi (fun i s -> (s.label, t.counts.(i))) t.shapes)
