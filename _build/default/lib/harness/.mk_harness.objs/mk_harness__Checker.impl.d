lib/harness/checker.ml: Array Format Hashtbl List Mk_clock Mk_storage
