lib/harness/runner.ml: Format List Mk_model Mk_sim Mk_util Mk_workload
