lib/harness/runner.mli: Format Mk_model Mk_sim Mk_workload
