lib/harness/checker.mli: Format Hashtbl Mk_clock Mk_storage
