module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn

type violation = {
  tid : Timestamp.Tid.t;
  key : int;
  expected_wts : Timestamp.t;
  observed_wts : Timestamp.t;
}

let pp_violation ppf v =
  Format.fprintf ppf "txn %a read key %d at version %a but latest committed write was %a"
    Timestamp.Tid.pp v.tid v.key Timestamp.pp v.observed_wts Timestamp.pp
    v.expected_wts

let sorted committed =
  List.sort
    (fun (a, tsa) (b, tsb) ->
      let c = Timestamp.compare tsa tsb in
      if c <> 0 then c else Timestamp.Tid.compare a.Txn.tid b.Txn.tid)
    committed

let check committed =
  let model : (int, Timestamp.t) Hashtbl.t = Hashtbl.create 4096 in
  let wts_of key =
    match Hashtbl.find_opt model key with Some ts -> ts | None -> Timestamp.zero
  in
  let rec replay = function
    | [] -> Ok ()
    | (txn, ts) :: rest ->
        let bad =
          Array.fold_left
            (fun acc (r : Txn.read_entry) ->
              match acc with
              | Some _ -> acc
              | None ->
                  let expected = wts_of r.key in
                  if Timestamp.equal expected r.wts then None
                  else
                    Some
                      {
                        tid = txn.Txn.tid;
                        key = r.key;
                        expected_wts = expected;
                        observed_wts = r.wts;
                      })
            None txn.Txn.read_set
        in
        begin
          match bad with
          | Some v -> Error v
          | None ->
              Array.iter
                (fun (w : Txn.write_entry) -> Hashtbl.replace model w.key ts)
                txn.Txn.write_set;
              replay rest
        end
  in
  replay (sorted committed)

let final_state committed =
  let model = Hashtbl.create 4096 in
  List.iter
    (fun (txn, ts) ->
      Array.iter
        (fun (w : Txn.write_entry) -> Hashtbl.replace model w.key (w.value, ts))
        txn.Txn.write_set)
    (sorted committed);
  model
