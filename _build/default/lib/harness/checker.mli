(** One-copy-serializability checker for committed histories.

    Meerkat serializes committed transactions in timestamp order
    (§3), so serializability has a direct witness: replaying the
    committed set in timestamp order must show every committed reader
    the exact version it actually observed — i.e. each read's recorded
    [wts] equals the largest committed write timestamp below the
    reader's own commit timestamp. Tests feed in every commit the
    clients were acknowledged, across all coordinators. *)

type violation = {
  tid : Mk_clock.Timestamp.Tid.t;
  key : int;
  expected_wts : Mk_clock.Timestamp.t;  (** Version the replay holds. *)
  observed_wts : Mk_clock.Timestamp.t;  (** Version the reader saw. *)
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list -> (unit, violation) result
(** [check committed] replays the committed transactions (any input
    order) in commit-timestamp order and reports the first read that
    observed a version other than the latest preceding committed
    write. *)

val final_state :
  (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list -> (int, int * Mk_clock.Timestamp.t) Hashtbl.t
(** The key → (value, wts) state a correct replica must converge to
    after applying exactly the committed transactions. *)
