module Txn = Mk_storage.Txn

type reply = No_record | Record of Replica.record_view

let choose ~quorum ~replies =
  if List.length replies < Quorum.majority quorum then
    invalid_arg "Recovery.choose: needs a majority of replies";
  let records =
    List.filter_map
      (function No_record -> None | Record v -> Some v)
      replies
  in
  let count pred = List.length (List.filter pred records) in
  let final_commit = count (fun v -> v.Replica.status = Txn.Committed) > 0 in
  let final_abort = count (fun v -> v.Replica.status = Txn.Aborted) > 0 in
  if final_commit then `Commit
  else if final_abort then `Abort
  else begin
    let accepted =
      List.fold_left
        (fun best (v : Replica.record_view) ->
          match (v.accept_view, v.status) with
          | Some av, (Txn.Accepted_commit | Txn.Accepted_abort) -> begin
              match best with
              | Some (bv, _) when bv >= av -> best
              | _ -> Some (av, v.status = Txn.Accepted_commit)
            end
          | _ -> best)
        None records
    in
    match accepted with
    | Some (_, true) -> `Commit
    | Some (_, false) -> `Abort
    | None ->
        let ok = count (fun v -> v.Replica.status = Txn.Validated_ok) in
        if ok >= Quorum.fast_recovery quorum then `Commit else `Abort
  end
