module Txn = Mk_storage.Txn

type verdict = Wait | Fast of bool | Slow of bool | Final of bool

let evaluate ~quorum ~replies =
  let n = Array.length replies in
  let received = ref 0 and ok = ref 0 and vabort = ref 0 and accepted = ref 0 in
  let finalized = ref None in
  Array.iter
    (fun reply ->
      match reply with
      | None -> ()
      | Some st ->
          incr received;
          (match st with
          | Txn.Validated_ok -> incr ok
          | Txn.Validated_abort -> incr vabort
          | Txn.Committed -> finalized := Some true
          | Txn.Aborted -> finalized := Some false
          | Txn.Accepted_commit | Txn.Accepted_abort -> incr accepted))
    replies;
  match !finalized with
  | Some commit -> Final commit
  | None ->
      let outstanding = n - !received in
      let fastq = Quorum.fast quorum in
      if !ok >= fastq then Fast true
      else if !vabort >= fastq then Fast false
      else if !accepted > 0 then
        (* An Accepted_* reply means a (backup) coordinator is already
           running the slow path for this transaction; interfering with
           a view-0 proposal could only be fenced. Wait — the
           retransmission path will observe the final status. *)
        Wait
      else if
        !received >= Quorum.majority quorum
        && !ok + outstanding < fastq
        && !vabort + outstanding < fastq
      then Slow (!ok >= Quorum.majority quorum)
      else Wait
