(** Pure quorum-decision rule for validation replies (§5.2.2 steps
    3–4), shared by the Meerkat and TAPIR coordinators.

    Given the replies collected so far, decide whether the transaction
    can be completed on the fast path (a supermajority of matching
    VALIDATED-* replies), must take the slow path (fast path
    impossible and a majority of replies in hand), is already final at
    some replica (a retransmission raced a backup coordinator), or
    must keep waiting. *)

type verdict =
  | Wait
  | Fast of bool  (** Supermajority matched; [true] = commit. *)
  | Slow of bool
      (** Propose via accept round; [true] = commit (a majority replied
          VALIDATED-OK). *)
  | Final of bool  (** Some replica already holds the final outcome. *)

val evaluate :
  quorum:Quorum.t -> replies:Mk_storage.Txn.status option array -> verdict
(** [replies] is indexed by replica; [None] marks replicas that have
    not answered. The array length must be the quorum's n. *)
