type t = { n : int; f : int }

let create ~n =
  if n < 1 || n mod 2 = 0 then
    invalid_arg "Quorum.create: n must be odd and positive";
  { n; f = (n - 1) / 2 }

let of_f ~f =
  if f < 0 then invalid_arg "Quorum.of_f: f must be non-negative";
  { n = (2 * f) + 1; f }

let majority t = t.f + 1
let fast t = t.f + ((t.f + 1) / 2) + 1
let fast_recovery t = ((t.f + 1) / 2) + 1
let pp ppf t = Format.fprintf ppf "n=%d f=%d maj=%d fast=%d" t.n t.f (majority t) (fast t)
