lib/meerkat/sharded.mli: Mk_cluster Mk_model Mk_sim Sim_system
