lib/meerkat/recovery.mli: Quorum Replica
