lib/meerkat/sim_system.ml: Array Decision Epoch Float Hashtbl List Mk_clock Mk_cluster Mk_model Mk_net Mk_sim Mk_storage Quorum Replica
