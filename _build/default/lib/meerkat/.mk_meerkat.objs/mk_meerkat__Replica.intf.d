lib/meerkat/replica.mli: Mk_clock Mk_storage Quorum
