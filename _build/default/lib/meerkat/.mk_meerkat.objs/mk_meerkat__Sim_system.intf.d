lib/meerkat/sim_system.mli: Mk_clock Mk_cluster Mk_model Mk_net Mk_sim Mk_storage Replica
