lib/meerkat/replica.ml: List Mk_clock Mk_storage Printf Quorum
