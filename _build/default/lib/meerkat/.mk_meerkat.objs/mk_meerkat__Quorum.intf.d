lib/meerkat/quorum.mli: Format
