lib/meerkat/quorum.ml: Format
