lib/meerkat/epoch.ml: Array Hashtbl List Mk_clock Mk_storage Quorum Replica
