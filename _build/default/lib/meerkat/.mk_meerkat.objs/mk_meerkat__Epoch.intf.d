lib/meerkat/epoch.mli: Quorum Replica
