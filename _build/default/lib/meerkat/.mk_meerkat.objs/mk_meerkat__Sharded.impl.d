lib/meerkat/sharded.ml: Array Hashtbl List Mk_clock Mk_cluster Mk_model Mk_sim Mk_storage Printf Sim_system
