lib/meerkat/decision.mli: Mk_storage Quorum
