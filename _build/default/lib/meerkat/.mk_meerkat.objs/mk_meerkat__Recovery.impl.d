lib/meerkat/recovery.ml: List Mk_storage Quorum Replica
