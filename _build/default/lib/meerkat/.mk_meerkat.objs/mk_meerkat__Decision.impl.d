lib/meerkat/decision.ml: Array Mk_storage Quorum
