module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Cluster = Mk_cluster.Cluster

type t = {
  engine : Engine.t;
  groups : Sim_system.t array;
  mutable committed : int;
  mutable aborted : int;
  mutable fast_path : int;
  mutable slow_path : int;
}

let create engine ~partitions cfg =
  if partitions < 1 then invalid_arg "Sharded.create: partitions must be >= 1";
  (* Each group preloads the local images of its keys: global key k
     lives in group (k mod partitions) as local key (k / partitions). *)
  let local_keys = ((cfg.Cluster.keys - 1) / partitions) + 1 in
  let groups =
    Array.init partitions (fun p ->
        Sim_system.create engine
          { cfg with Cluster.keys = local_keys; seed = cfg.Cluster.seed + p })
  in
  { engine; groups; committed = 0; aborted = 0; fast_path = 0; slow_path = 0 }

let partitions t = Array.length t.groups
let partition_of_key t key = key mod Array.length t.groups
let local_key t key = key / Array.length t.groups
let group t p = t.groups.(p)
let name t = Printf.sprintf "MEERKAT-%dP" (Array.length t.groups)
let threads t = Sim_system.threads t.groups.(0)

let counters t : Intf.counters =
  let retransmits =
    Array.fold_left
      (fun acc g -> acc + (Sim_system.counters g).Intf.retransmits)
      0 t.groups
  in
  {
    committed = t.committed;
    aborted = t.aborted;
    fast_path = t.fast_path;
    slow_path = t.slow_path;
    retransmits;
  }

let submit_gen t ~client ~reads ~mk_writes ~on_done =
  let nreads = Array.length reads in
  let read_entries =
    Array.make nreads ({ key = 0; wts = Timestamp.zero } : Txn.read_entry)
  in
  let values = Array.make nreads 0 in
  (* Interactive execution against the owning partitions, one read at
     a time. Read-set entries carry the *global* key; the sub-read_set
     sent to each partition is translated to local keys below. *)
  let rec exec i k =
    if i >= nreads then k ()
    else begin
      let key = reads.(i) in
      let p = partition_of_key t key in
      Sim_system.execute_read t.groups.(p) ~client ~key:(local_key t key)
        (fun (value, wts) ->
          read_entries.(i) <- { key; wts };
          values.(i) <- value;
          exec (i + 1) k)
    end
  in
  exec 0 (fun () ->
      let writes : (int * int) array = mk_writes values in
      (* One global tid and timestamp for all partitions: the
         serialization point must be the same everywhere. *)
      let tid, ts = Sim_system.fresh_txn_stamp t.groups.(0) ~client in
      let involved = Hashtbl.create 4 in
      let add p = if not (Hashtbl.mem involved p) then Hashtbl.add involved p () in
      Array.iter (fun (r : Txn.read_entry) -> add (partition_of_key t r.key)) read_entries;
      Array.iter (fun (key, _) -> add (partition_of_key t key)) writes;
      let parts = Hashtbl.fold (fun p () acc -> p :: acc) involved [] in
      let sub_txn p =
        let read_set =
          Array.to_list read_entries
          |> List.filter_map (fun (r : Txn.read_entry) ->
                 if partition_of_key t r.key = p then
                   Some ({ r with key = local_key t r.key } : Txn.read_entry)
                 else None)
        in
        let write_set =
          Array.to_list writes
          |> List.filter_map (fun (key, value) ->
                 if partition_of_key t key = p then
                   Some ({ key = local_key t key; value } : Txn.write_entry)
                 else None)
        in
        Txn.make ~tid ~read_set ~write_set
      in
      let sub_txns = List.map (fun p -> (p, sub_txn p)) parts in
      if sub_txns = [] then begin
        (* Empty transaction: trivially committed. *)
        t.committed <- t.committed + 1;
        on_done ~committed:true
      end
      else begin
        let pending = ref (List.length sub_txns) in
        let all_commit = ref true in
        List.iter
          (fun (p, txn) ->
            Sim_system.prepare_txn t.groups.(p) ~txn ~ts ~on_prepared:(fun commit ->
                if not commit then all_commit := false;
                decr pending;
                if !pending = 0 then begin
                  let commit = !all_commit in
                  if commit then t.committed <- t.committed + 1
                  else t.aborted <- t.aborted + 1;
                  List.iter
                    (fun (p, txn) ->
                      Sim_system.finalize_txn t.groups.(p) ~txn ~ts ~commit)
                    sub_txns;
                  on_done ~committed:commit
                end))
          sub_txns
      end)

let submit t ~client (req : Intf.txn_request) ~on_done =
  submit_gen t ~client ~reads:req.reads ~mk_writes:(fun _ -> req.writes) ~on_done

let submit_interactive t ~client ~reads ~compute ~on_done =
  submit_gen t ~client ~reads ~mk_writes:compute ~on_done

let server_busy_fraction t =
  let sum =
    Array.fold_left (fun acc g -> acc +. Sim_system.server_busy_fraction g) 0.0 t.groups
  in
  sum /. float_of_int (Array.length t.groups)

let read_committed t ~replica ~key =
  Sim_system.read_committed
    t.groups.(partition_of_key t key)
    ~replica ~key:(local_key t key)
