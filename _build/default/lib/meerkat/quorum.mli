(** Quorum arithmetic for n = 2f + 1 replicas (§5.2.2).

    The fast path needs a supermajority of f + ⌈f/2⌉ + 1 matching
    validation replies (> 3/4 of the replicas); the slow path and all
    recovery protocols use simple majorities of f + 1. *)

type t = private { n : int; f : int }

val create : n:int -> t
(** @raise Invalid_argument unless [n] is odd and >= 1. *)

val of_f : f:int -> t
val majority : t -> int
(** f + 1. *)

val fast : t -> int
(** f + ⌈f/2⌉ + 1. *)

val fast_recovery : t -> int
(** ⌈f/2⌉ + 1 — the minimum number of epoch-change participants that
    must have validated-ok a transaction for it to possibly have
    committed on the fast path (§5.3.1). *)

val pp : Format.formatter -> t -> unit
