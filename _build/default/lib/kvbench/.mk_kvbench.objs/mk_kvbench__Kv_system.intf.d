lib/kvbench/kv_system.mli: Mk_model Mk_net Mk_sim
