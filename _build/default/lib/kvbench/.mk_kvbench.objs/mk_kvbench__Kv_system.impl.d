lib/kvbench/kv_system.ml: Array Hashtbl Mk_model Mk_net Mk_sim Mk_util Printf
