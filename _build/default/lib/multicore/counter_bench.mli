(** Real-hardware demonstration of the Figure 1 bottleneck: a shared
    atomic counter vs per-domain (sharded) counters, on actual OCaml 5
    domains.

    The simulator models the shared counter as a serial resource; this
    module shows the effect is real on this machine's cores, in the
    same direction the paper measured on theirs. *)

type result = {
  domains : int;
  increments : int;  (** Total across domains. *)
  wall_seconds : float;
  ops_per_second : float;
}

val shared_atomic : domains:int -> increments_per_domain:int -> result
(** All domains hammer one [Atomic.t] — cross-core coordination on one
    cache line. *)

val sharded : domains:int -> increments_per_domain:int -> result
(** Each domain increments its own padded counter — DAP; the total is
    summed at the end. *)
