lib/multicore/par_occ.ml: Array Domain Hashtbl List Mk_clock Mk_storage Mk_util Mk_workload Unix
