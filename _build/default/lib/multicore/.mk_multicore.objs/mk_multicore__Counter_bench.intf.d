lib/multicore/counter_bench.mli:
