lib/multicore/counter_bench.ml: Array Atomic Domain List Unix
