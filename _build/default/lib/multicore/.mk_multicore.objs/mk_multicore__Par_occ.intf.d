lib/multicore/par_occ.mli: Mk_clock Mk_storage
