(** Real-parallelism execution of Meerkat's storage and concurrency
    control on OCaml 5 domains.

    The simulator exercises the protocols deterministically; this
    module exercises the {e same} vstore / Alg. 1 code under genuine
    hardware parallelism: several domains race transactions against
    one shared store, with per-key mutexes doing real mutual
    exclusion. Property tests then check that the set of transactions
    that passed validation and committed is serializable — the
    strongest evidence the fine-grained locking in
    {!Mk_storage.Occ} is actually right, not just right under the
    simulator's serial schedule. *)

type report = {
  committed : (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list;
  aborted : int;
  wall_seconds : float;
  throughput : float;  (** Committed transactions per wall second. *)
}

val run :
  domains:int ->
  txns_per_domain:int ->
  keys:int ->
  theta:float ->
  ?reads_per_txn:int ->
  ?writes_per_txn:int ->
  seed:int ->
  unit ->
  report
(** Each domain is a single-node Meerkat core: it draws transactions
    that read-modify-write [writes_per_txn] keys (default 1) and read
    [reads_per_txn] further keys (default 0), stamps them with a
    per-domain monotonic timestamp (domain id as tie-breaker, exactly
    the client-id scheme of §5.2.2), validates with Alg. 1 against the
    shared vstore and finishes (commit or back-out) accordingly. The
    store is preloaded before the domains start. *)

val final_store_matches :
  report -> Mk_storage.Vstore.t -> (int * int * int) option
(** After {!run}, checks the store against a timestamp-order replay of
    the committed transactions: returns [Some (key, expected, got)]
    for the first divergent key, [None] if the store is exactly the
    replay state. The vstore handed in must be the one the run used
    (see {!run_with_store}). *)

val run_with_store :
  store:Mk_storage.Vstore.t ->
  domains:int ->
  txns_per_domain:int ->
  keys:int ->
  theta:float ->
  ?reads_per_txn:int ->
  ?writes_per_txn:int ->
  seed:int ->
  unit ->
  report
(** As {!run}, but against a caller-supplied (already loaded or empty)
    store so the caller can inspect it afterwards. *)
