(** Deterministic discrete-event simulation engine.

    Simulated time is a [float] in microseconds. Events scheduled for
    the same instant fire in scheduling order (a sequence number
    breaks ties), so a run is a pure function of the seed and the
    model — the property every test and benchmark relies on. *)

type time = float
(** Simulated time, in microseconds since simulation start. *)

type t

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes an engine whose root RNG is seeded with
    [seed] (default 1). *)

val now : t -> time
val rng : t -> Mk_util.Rng.t
(** The engine's root RNG; split it per entity for isolation. *)

val schedule : t -> delay:time -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative
    delays are clamped to zero. *)

val schedule_at : t -> time -> (unit -> unit) -> unit
(** [schedule_at t at f] runs [f] at absolute time [at] (clamped to
    [now t] if in the past). *)

val pending : t -> int
(** Number of events not yet dispatched. *)

val run : ?until:time -> ?max_events:int -> t -> unit
(** Dispatch events in timestamp order until the queue is empty, the
    clock passes [until], or [max_events] events have run. Events
    scheduled beyond [until] remain queued. *)

val step : t -> bool
(** Dispatch a single event; [false] if the queue was empty. *)
