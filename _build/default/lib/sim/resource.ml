type t = {
  engine : Engine.t;
  name : string;
  mutable next_free : Engine.time;
  mutable acquisitions : int;
  mutable busy_time : Engine.time;
  mutable wait_time : Engine.time;
}

let create engine ~name =
  { engine; name; next_free = 0.0; acquisitions = 0; busy_time = 0.0; wait_time = 0.0 }

let name t = t.name

let use t ~hold k =
  if hold < 0.0 then invalid_arg "Resource.use: negative hold";
  let now = Engine.now t.engine in
  let start = if t.next_free > now then t.next_free else now in
  t.wait_time <- t.wait_time +. (start -. now);
  t.busy_time <- t.busy_time +. hold;
  t.acquisitions <- t.acquisitions + 1;
  t.next_free <- start +. hold;
  Engine.schedule_at t.engine t.next_free k

let acquisitions t = t.acquisitions
let busy_time t = t.busy_time
let wait_time t = t.wait_time
