type time = float

type event = { at : time; seq : int; run : unit -> unit }

type t = {
  mutable now : time;
  mutable seq : int;
  queue : event Mk_util.Heap.t;
  rng : Mk_util.Rng.t;
}

let compare_events a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 1) () =
  {
    now = 0.0;
    seq = 0;
    queue = Mk_util.Heap.create ~cmp:compare_events;
    rng = Mk_util.Rng.create ~seed;
  }

let now t = t.now
let rng t = t.rng

let schedule_at t at run =
  let at = if at < t.now then t.now else at in
  let seq = t.seq in
  t.seq <- seq + 1;
  Mk_util.Heap.push t.queue { at; seq; run }

let schedule t ~delay run =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t (t.now +. delay) run

let pending t = Mk_util.Heap.length t.queue

let step t =
  match Mk_util.Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.now <- ev.at;
      ev.run ();
      true

let run ?(until = infinity) ?(max_events = max_int) t =
  let rec loop dispatched =
    if dispatched >= max_events then ()
    else begin
      match Mk_util.Heap.peek t.queue with
      | None -> ()
      | Some ev when ev.at > until ->
          (* Advance the clock to the horizon so repeated bounded runs
             make progress, but leave future events queued. *)
          if until < infinity then t.now <- until
      | Some _ ->
          ignore (step t);
          loop (dispatched + 1)
    end
  in
  loop 0
