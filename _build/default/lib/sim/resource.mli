(** A serially-used shared resource — the simulator's model of a
    cross-core coordination point.

    A resource serves requests FCFS: a request arriving while the
    resource is busy waits until every earlier request has finished
    its hold time. This is how we model the shared atomic counter and
    shared log of KuaFu++ and the shared-record mutex of TAPIR: each
    access excludes all others for its critical-section length, so
    aggregate throughput through the resource is capped at
    [1 / hold] regardless of core count — the cross-core bottleneck
    the paper isolates.

    Because callers invoke [use] from inside simulation events,
    arrival order equals simulated-time order and FCFS reduces to a
    simple "next free at" clock; no explicit queue is needed. *)

type t

val create : Engine.t -> name:string -> t
val name : t -> string

val use : t -> hold:Engine.time -> (unit -> unit) -> unit
(** [use t ~hold k] waits for the resource, occupies it for [hold]
    microseconds, then runs [k]. The calling core is expected to model
    spin-waiting by staying busy until [k] runs (see {!Core}). *)

val acquisitions : t -> int
val busy_time : t -> Engine.time
(** Total time the resource has been held. *)

val wait_time : t -> Engine.time
(** Total time requests spent queued before being served. *)
