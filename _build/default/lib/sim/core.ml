type job = { cost : Engine.time; body : finish:(unit -> unit) -> unit }

type t = {
  engine : Engine.t;
  id : int;
  jobs : job Queue.t;
  mutable running : bool;
  mutable completed : int;
  mutable busy_time : Engine.time;
  mutable job_started : Engine.time;
}

let create engine ~id =
  {
    engine;
    id;
    jobs = Queue.create ();
    running = false;
    completed = 0;
    busy_time = 0.0;
    job_started = 0.0;
  }

let id t = t.id

let rec start_next t =
  match Queue.take_opt t.jobs with
  | None -> t.running <- false
  | Some job ->
      t.running <- true;
      t.job_started <- Engine.now t.engine;
      Engine.schedule t.engine ~delay:job.cost (fun () ->
          let finished = ref false in
          let finish () =
            if !finished then invalid_arg "Core: finish called twice";
            finished := true;
            t.completed <- t.completed + 1;
            t.busy_time <- t.busy_time +. (Engine.now t.engine -. t.job_started);
            start_next t
          in
          job.body ~finish)

let submit t ~cost body =
  Queue.add { cost; body } t.jobs;
  if not t.running then start_next t

let submit_work t ~cost k =
  submit t ~cost (fun ~finish ->
      k ();
      finish ())

let queue_length t = Queue.length t.jobs
let completed t = t.completed
let busy_time t = t.busy_time
