lib/sim/engine.mli: Mk_util
