lib/sim/engine.ml: Mk_util
