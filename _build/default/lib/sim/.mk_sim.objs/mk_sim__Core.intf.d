lib/sim/core.mli: Engine
