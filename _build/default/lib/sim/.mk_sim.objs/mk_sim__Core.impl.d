lib/sim/core.ml: Engine Queue
