lib/cluster/cluster.mli: Mk_clock Mk_model Mk_net Mk_sim Mk_storage Mk_util
