lib/storage/occ.ml: Array Mk_clock Mutex Txn Vstore
