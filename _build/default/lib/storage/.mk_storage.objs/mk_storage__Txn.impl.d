lib/storage/txn.ml: Array Format Mk_clock
