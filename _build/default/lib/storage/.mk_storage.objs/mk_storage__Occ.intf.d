lib/storage/occ.mli: Mk_clock Txn Vstore
