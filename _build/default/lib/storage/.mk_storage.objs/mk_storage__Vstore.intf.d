lib/storage/vstore.mli: Mk_clock Mutex Txn
