lib/storage/vstore.ml: Array Hashtbl Mk_clock Mutex Printf Txn
