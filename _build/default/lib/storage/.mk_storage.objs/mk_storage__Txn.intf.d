lib/storage/txn.mli: Format Mk_clock
