lib/storage/trecord.mli: Mk_clock Txn
