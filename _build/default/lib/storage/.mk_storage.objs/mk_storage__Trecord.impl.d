lib/storage/trecord.ml: Array Hashtbl List Mk_clock Printf Txn
