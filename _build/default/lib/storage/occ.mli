(** Meerkat's parallel OCC checks — Algorithm 1 of the paper — plus
    the write phase (§5.2.3).

    The checks run with only per-key locks held, one key at a time
    (small atomic regions at the cost of precision: some serializable
    histories are rejected, exactly as the paper accepts). They are
    shared by Meerkat, Meerkat-PB, TAPIR and KuaFu++, which differ in
    *where* the checks run and what coordination surrounds them, not
    in the checks themselves. *)

type outcome = [ `Ok | `Abort ]

val validate : Vstore.t -> Txn.t -> ts:Mk_clock.Timestamp.t -> outcome
(** Validate [txn] at proposed commit timestamp [ts]:

    - each read must still see the latest committed version as of [ts]
      ([e.wts > r.wts] or [ts > MIN(writers)] aborts);
    - each write must not interpose before a committed or pending read
      ([ts < e.rts] or [ts < MAX(readers)] aborts).

    On [`Ok], [ts] has been added to the [readers]/[writers] pending
    sets of the accessed keys; on [`Abort], any additions made along
    the way have been backed out (the [cleanup_readers_writers] of
    Alg. 1). Unloaded keys are created on demand with the zero
    version. *)

val finish : Vstore.t -> Txn.t -> ts:Mk_clock.Timestamp.t -> commit:bool -> unit
(** The write phase. If [commit], install each write under the Thomas
    write rule (only if [ts] is newer than the entry's [wts]) and
    advance [rts] for each read. Whether committing or aborting,
    remove [ts] from the pending sets. Idempotent, and safe on a
    replica that locally validated-abort (or never validated) the
    transaction: removal of absent pending entries is a no-op and the
    writes are still applied, which the protocol needs when a slow
    path commits a transaction some replica rejected. *)

val abort_pending : Vstore.t -> Txn.t -> ts:Mk_clock.Timestamp.t -> unit
(** Remove [ts] from the pending sets without touching versions —
    clean-up when a validated transaction is aborted. *)
