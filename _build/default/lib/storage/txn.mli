(** Transactions: read/write sets and lifecycle status (§4.2).

    Keys are integers (the paper's 64-byte keys hash to a table slot
    anyway; the payload size is part of the CPU cost model). Values
    are integers for the same reason. *)

type key = int
type value = int

type read_entry = {
  key : key;
  wts : Mk_clock.Timestamp.t;  (** Version observed during the execute phase. *)
}

type write_entry = { key : key; value : value }

type t = {
  tid : Mk_clock.Timestamp.Tid.t;
  read_set : read_entry array;
  write_set : write_entry array;
}

val make :
  tid:Mk_clock.Timestamp.Tid.t -> read_set:read_entry list -> write_set:write_entry list -> t

val nkeys : t -> int
(** Total read-set + write-set cardinality (drives validation cost). *)

val reads_key : t -> key -> bool
val writes_key : t -> key -> bool

val conflicts : t -> t -> bool
(** [conflicts a b] iff the transactions have a read-write or
    write-write overlap — the paper's definition of "conflicting";
    non-conflicting transactions must commute and never coordinate. *)

val pp : Format.formatter -> t -> unit

(** Transaction status as stored in the trecord. [Accepted_*] is the
    slow-path consensus state: a proposal from the (possibly backup)
    coordinator of some view, recorded with that view in the entry's
    [accept_view]. *)
type status =
  | Validated_ok
  | Validated_abort
  | Accepted_commit
  | Accepted_abort
  | Committed
  | Aborted

val status_to_string : status -> string
val pp_status : Format.formatter -> status -> unit

val is_final : status -> bool
(** [Committed] or [Aborted]. *)
