module Timestamp = Mk_clock.Timestamp

type key = int
type value = int
type read_entry = { key : key; wts : Timestamp.t }
type write_entry = { key : key; value : value }

type t = {
  tid : Timestamp.Tid.t;
  read_set : read_entry array;
  write_set : write_entry array;
}

let make ~tid ~read_set ~write_set =
  { tid; read_set = Array.of_list read_set; write_set = Array.of_list write_set }

let nkeys t = Array.length t.read_set + Array.length t.write_set
let reads_key t key = Array.exists (fun (r : read_entry) -> r.key = key) t.read_set
let writes_key t key = Array.exists (fun (w : write_entry) -> w.key = key) t.write_set

let conflicts a b =
  let rw x y =
    Array.exists (fun (r : read_entry) -> writes_key y r.key) x.read_set
  in
  let ww x y =
    Array.exists (fun (w : write_entry) -> writes_key y w.key) x.write_set
  in
  rw a b || rw b a || ww a b

let pp ppf t =
  let pp_read ppf (r : read_entry) =
    Format.fprintf ppf "%d@%a" r.key Timestamp.pp r.wts
  in
  let pp_write ppf (w : write_entry) = Format.fprintf ppf "%d:=%d" w.key w.value in
  Format.fprintf ppf "{%a r=[%a] w=[%a]}" Timestamp.Tid.pp t.tid
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") pp_read)
    (Array.to_seq t.read_set)
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") pp_write)
    (Array.to_seq t.write_set)

type status =
  | Validated_ok
  | Validated_abort
  | Accepted_commit
  | Accepted_abort
  | Committed
  | Aborted

let status_to_string = function
  | Validated_ok -> "VALIDATED-OK"
  | Validated_abort -> "VALIDATED-ABORT"
  | Accepted_commit -> "ACCEPT-COMMIT"
  | Accepted_abort -> "ACCEPT-ABORT"
  | Committed -> "COMMITTED"
  | Aborted -> "ABORTED"

let pp_status ppf s = Format.pp_print_string ppf (status_to_string s)

let is_final = function
  | Committed | Aborted -> true
  | Validated_ok | Validated_abort | Accepted_commit | Accepted_abort -> false
