(** The vstore: versioned backing storage shared by all cores of a
    replica (§4.2).

    Each key carries its committed value, the write timestamp [wts] of
    the transaction that installed it, the read timestamp [rts] of the
    latest committed reader, and the pending [readers]/[writers]
    timestamp sets used by Alg. 1. State is partitioned per key —
    there is no structure shared between non-conflicting transactions,
    which is what DAP demands.

    The table is sharded and every entry has its own mutex, so the
    same implementation serves both the (single-threaded,
    deterministic) simulator and the real-parallelism layer in
    [Mk_multicore], where OCaml domains genuinely race on entries. *)

type entry = {
  key : Txn.key;
  lock : Mutex.t;  (** The paper's fine-grained per-key lock. *)
  mutable value : Txn.value;
  mutable wts : Mk_clock.Timestamp.t;
  mutable rts : Mk_clock.Timestamp.t;
  mutable readers : Mk_clock.Timestamp.Set.t;
      (** Pending validated readers (uncommitted). *)
  mutable writers : Mk_clock.Timestamp.Set.t;
      (** Pending validated writers (uncommitted). *)
}

type t

val create : ?shards:int -> unit -> t
(** [shards] must be a power of two (default 64). *)

val load : t -> key:Txn.key -> value:Txn.value -> unit
(** Pre-load a key with the initial version (timestamp zero), as the
    paper loads the database before each run. Replaces any previous
    entry. *)

val find : t -> Txn.key -> entry option
val find_exn : t -> Txn.key -> entry

val find_or_create : t -> Txn.key -> entry
(** Used by blind writes to keys never loaded. Thread-safe. *)

val size : t -> int

val read_versioned : entry -> Txn.value * Mk_clock.Timestamp.t
(** Atomically snapshot (value, wts) under the entry lock — the GET
    handler. *)

val iter : t -> (entry -> unit) -> unit

val clear_pending : t -> unit
(** Empty every entry's pending reader/writer sets. Used when an epoch
    change finishes: all in-flight transactions of the old epoch have
    been decided, so marks left behind by non-participant replicas are
    stale and would otherwise block future validations forever. *)

val pending_counts : t -> int * int
(** Totals of pending (readers, writers) across all entries; test and
    invariant-checking helper. *)
