module Timestamp = Mk_clock.Timestamp

type entry = {
  key : Txn.key;
  lock : Mutex.t;
  mutable value : Txn.value;
  mutable wts : Timestamp.t;
  mutable rts : Timestamp.t;
  mutable readers : Timestamp.Set.t;
  mutable writers : Timestamp.Set.t;
}

type shard = { table : (Txn.key, entry) Hashtbl.t; shard_lock : Mutex.t }
type t = { shards : shard array; mask : int }

let create ?(shards = 64) () =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg "Vstore.create: shards must be a positive power of two";
  {
    shards =
      Array.init shards (fun _ ->
          { table = Hashtbl.create 1024; shard_lock = Mutex.create () });
    mask = shards - 1;
  }

(* Finalize-style mix so adjacent keys land in different shards. *)
let hash_key k =
  let k = k * 0x9E3779B1 in
  (k lxor (k lsr 16)) land max_int

let shard_of t key = t.shards.(hash_key key land t.mask)

let fresh_entry key value =
  {
    key;
    lock = Mutex.create ();
    value;
    wts = Timestamp.zero;
    rts = Timestamp.zero;
    readers = Timestamp.Set.empty;
    writers = Timestamp.Set.empty;
  }

let load t ~key ~value =
  let s = shard_of t key in
  Mutex.lock s.shard_lock;
  Hashtbl.replace s.table key (fresh_entry key value);
  Mutex.unlock s.shard_lock

let find t key =
  let s = shard_of t key in
  Hashtbl.find_opt s.table key

let find_exn t key =
  match find t key with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Vstore.find_exn: key %d not loaded" key)

let find_or_create t key =
  let s = shard_of t key in
  match Hashtbl.find_opt s.table key with
  | Some e -> e
  | None ->
      Mutex.lock s.shard_lock;
      let e =
        match Hashtbl.find_opt s.table key with
        | Some e -> e
        | None ->
            let e = fresh_entry key 0 in
            Hashtbl.add s.table key e;
            e
      in
      Mutex.unlock s.shard_lock;
      e

let size t = Array.fold_left (fun acc s -> acc + Hashtbl.length s.table) 0 t.shards

let read_versioned e =
  Mutex.lock e.lock;
  let v = (e.value, e.wts) in
  Mutex.unlock e.lock;
  v

let iter t f =
  Array.iter (fun s -> Hashtbl.iter (fun _ e -> f e) s.table) t.shards

let clear_pending t =
  iter t (fun e ->
      Mutex.lock e.lock;
      e.readers <- Timestamp.Set.empty;
      e.writers <- Timestamp.Set.empty;
      Mutex.unlock e.lock)

let pending_counts t =
  let readers = ref 0 and writers = ref 0 in
  iter t (fun e ->
      readers := !readers + Timestamp.Set.cardinal e.readers;
      writers := !writers + Timestamp.Set.cardinal e.writers);
  (!readers, !writers)
