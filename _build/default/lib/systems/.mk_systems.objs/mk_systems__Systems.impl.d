lib/systems/systems.ml: List Mk_baselines Mk_cluster Mk_harness Mk_meerkat Mk_model Mk_sim Mk_util
