lib/systems/systems.mli: Mk_cluster Mk_harness Mk_model Mk_sim Mk_util Mk_workload
