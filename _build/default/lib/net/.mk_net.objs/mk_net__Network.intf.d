lib/net/network.mli: Mk_sim Mk_util Transport
