lib/net/transport.ml: Format
