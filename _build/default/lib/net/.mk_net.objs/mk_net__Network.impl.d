lib/net/network.ml: Mk_sim Mk_util Transport
