lib/net/transport.mli: Format
