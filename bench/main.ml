(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§6), plus ablations and micro-benchmarks.

     dune exec bench/main.exe                 # everything, quick mode
     dune exec bench/main.exe -- --full       # longer windows, finer sweeps
     dune exec bench/main.exe -- fig4 fig6a   # selected experiments

   Absolute numbers come from the calibrated cost model (see
   lib/model/costs.ml and DESIGN.md); the comparative shapes are the
   reproduction targets and are recorded in EXPERIMENTS.md. *)

module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Intf = Mk_model.System_intf
module Cluster = Mk_cluster.Cluster
module Systems = Mk_systems.Systems
module Workload = Mk_workload.Workload
module Runner = Mk_harness.Runner
module KV = Mk_kvbench.Kv_system
module Table = Mk_util.Table

type mode = {
  full : bool;
  seed : int;
  trace : string option;  (** [--trace FILE]: Chrome-trace output path. *)
  metrics : bool;  (** [--metrics]: print the metrics registry dump. *)
  nemesis : Mk_fault.Nemesis.profile option;
      (** [--nemesis PROFILE]: restrict the chaos experiment to one profile. *)
  nemesis_seed : int option;  (** [--nemesis-seed N]: chaos seed base. *)
}

let say fmt = Format.printf (fmt ^^ "@.")

let heading title =
  Format.printf "@.=== %s ===@." title

let mfmt v = Printf.sprintf "%.3f" (v /. 1e6)
let pct v = Printf.sprintf "%.1f" (100.0 *. v)

(* ------------------------------------------------------------------ *)
(* Figure 1: PUT microbenchmark, UDP vs eRPC, with/without a shared
   atomic counter.                                                     *)
(* ------------------------------------------------------------------ *)

let fig1_point mode ~threads ~transport ~atomic_counter =
  let make ~n_clients:_ =
    let engine = Engine.create ~seed:mode.seed () in
    let cfg = { KV.default_config with threads; transport; atomic_counter } in
    let sys = KV.create engine cfg in
    let packed =
      Intf.Packed
        ( (module struct
            type t = KV.t

            let name = KV.name
            let threads = KV.threads
            let submit = KV.submit
            let obs = KV.obs
          end),
          sys )
    in
    (engine, packed, fun () -> KV.server_busy_fraction sys)
  in
  let workload () =
    Workload.write_only
      ~rng:(Mk_util.Rng.create ~seed:(mode.seed + 1))
      ~keys:65536 ~theta:0.0 ~nwrites:1
  in
  let measure = if mode.full then 2500.0 else 800.0 in
  let _, r =
    Runner.peak ~make ~workload
      ~ladder:[ 8 * threads; 24 * threads; 48 * threads ]
      ~warmup:(measure /. 4.0) ~measure
  in
  r.Runner.goodput

let fig1 mode =
  heading "Figure 1: PUT throughput, kernel-bypass vs kernel UDP stack";
  say "Paper: eRPC ~8x UDP; a shared atomic counter caps eRPC near 11 M";
  say "ops/s (invisible on UDP up to 20 threads).";
  let threads_axis =
    if mode.full then [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ] else [ 2; 8; 14; 20 ]
  in
  let table =
    Table.create ~header:[ "threads"; "eRPC"; "eRPC+counter"; "UDP"; "UDP+counter" ]
  in
  List.iter
    (fun threads ->
      let point transport atomic_counter =
        fig1_point mode ~threads ~transport ~atomic_counter
      in
      let erpc = point Transport.erpc false in
      let erpc_ctr = point Transport.erpc true in
      let udp = point Transport.udp false in
      let udp_ctr = point Transport.udp true in
      Table.add_row table
        [ string_of_int threads; mfmt erpc; mfmt erpc_ctr; mfmt udp; mfmt udp_ctr ])
    threads_axis;
  say "Peak throughput (million PUTs/sec):";
  Table.print table

(* ------------------------------------------------------------------ *)
(* Table 1: the coordination matrix, verified by construction flags.   *)
(* ------------------------------------------------------------------ *)

let table1 _mode =
  heading "Table 1: evaluation prototypes and their coordination";
  let table =
    Table.create ~header:[ "system"; "cross-core coord."; "cross-replica coord." ]
  in
  List.iter
    (fun kind ->
      let core, replica = Systems.coordination kind in
      let yn b = if b then "yes" else "no" in
      Table.add_row table [ Systems.name kind; yn core; yn replica ])
    [ Systems.Kuafupp; Systems.Tapir; Systems.Meerkat_pb; Systems.Meerkat ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* Table 2: the Retwis mix, generated vs specified.                    *)
(* ------------------------------------------------------------------ *)

let table2 mode =
  heading "Table 2: Retwis transaction mix (spec vs generated)";
  let wl = Workload.retwis ~rng:(Mk_util.Rng.create ~seed:mode.seed) ~keys:65536 ~theta:0.0 in
  let n = if mode.full then 200_000 else 50_000 in
  let gets = ref 0 and puts = ref 0 in
  for _ = 1 to n do
    let req = Workload.next wl in
    gets := !gets + Array.length req.Intf.reads;
    puts := !puts + Array.length req.Intf.writes
  done;
  let spec =
    [
      ("Add User", "1 get, 3 puts", 5.0);
      ("Follow/Unfollow", "2 gets, 2 puts", 15.0);
      ("Post Tweet", "3 gets, 5 puts", 30.0);
      ("Load Timeline", "rand(1,10) gets", 50.0);
    ]
  in
  let mix = Workload.mix_report wl in
  let table =
    Table.create ~header:[ "transaction type"; "ops"; "spec %"; "generated %" ]
  in
  List.iter
    (fun (label, ops, expected) ->
      let got =
        match List.assoc_opt label mix with
        | Some c -> 100.0 *. float_of_int c /. float_of_int n
        | None -> 0.0
      in
      Table.add_row table
        [ label; ops; Printf.sprintf "%.0f" expected; Printf.sprintf "%.2f" got ])
    spec;
  Table.print table;
  say "mean gets/txn = %.2f (expected 4.00), mean puts/txn = %.2f (expected 1.95)"
    (float_of_int !gets /. float_of_int n)
    (float_of_int !puts /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Figures 4 & 5: peak throughput vs server threads, four systems.     *)
(* ------------------------------------------------------------------ *)

let threads_axis mode =
  if mode.full then [ 8; 16; 24; 32; 40; 48; 56; 64; 72; 80 ]
  else [ 8; 16; 32; 64; 80 ]

let scaling_figure mode ~title ~paper_note ~workload =
  heading title;
  say "%s" paper_note;
  let keys_per_thread = if mode.full then 8192 else 4096 in
  let measure = if mode.full then 3000.0 else 1200.0 in
  let table =
    Table.create
      ~header:[ "threads"; "MEERKAT"; "MEERKAT-PB"; "TAPIR"; "KuaFu++" ]
  in
  List.iter
    (fun threads ->
      let row =
        List.map
          (fun kind ->
            let config =
              {
                Cluster.default_config with
                threads;
                keys = keys_per_thread * threads;
                seed = mode.seed;
              }
            in
            let _, r =
              Systems.sweep kind ~config ~workload ~warmup:(measure /. 2.0) ~measure
            in
            mfmt r.Runner.goodput)
          Systems.all
      in
      Table.add_row table (string_of_int threads :: row))
    (threads_axis mode);
  say "Peak goodput (million committed txns/sec), uniform key access:";
  Table.print table

let fig4 mode =
  scaling_figure mode ~title:"Figure 4: YCSB-T throughput vs server threads"
    ~paper_note:
      "Paper: KuaFu++ caps ~0.6M at ~6 threads; TAPIR ~0.8M at ~8; Meerkat-PB\n\
       ~7x KuaFu++; Meerkat scales linearly to 80 threads and ~8.3M txn/s (12x)."
    ~workload:(fun ~rng ~keys -> Workload.ycsb_t ~rng ~keys ~theta:0.0)

let fig5 mode =
  scaling_figure mode ~title:"Figure 5: Retwis throughput vs server threads"
    ~paper_note:
      "Paper: longer read-heavy txns lower all systems; TAPIR/KuaFu++ scale\n\
       further (~32 threads) but still cap at 0.6-0.7M; Meerkat reaches ~2.7M."
    ~workload:(fun ~rng ~keys -> Workload.retwis ~rng ~keys ~theta:0.0)

(* ------------------------------------------------------------------ *)
(* Figures 6 & 7: contention sweep at 64 threads, Meerkat vs PB.       *)
(* ------------------------------------------------------------------ *)

type zipf_point = {
  theta : float;
  meerkat : Runner.result;
  meerkat_pb : Runner.result;
}

let zipf_sweep mode ~workload =
  let threads = 64 in
  let keys_per_thread = if mode.full then 8192 else 4096 in
  let measure = if mode.full then 2500.0 else 1000.0 in
  let thetas =
    if mode.full then [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.85; 0.9; 0.95; 0.99 ]
    else [ 0.0; 0.5; 0.7; 0.8; 0.9; 0.95; 0.99 ]
  in
  List.map
    (fun theta ->
      let run kind =
        let config =
          {
            Cluster.default_config with
            threads;
            keys = keys_per_thread * threads;
            seed = mode.seed;
          }
        in
        let _, r =
          Systems.sweep kind ~config
            ~workload:(fun ~rng ~keys -> workload ~rng ~keys ~theta)
            ~warmup:(measure /. 2.0) ~measure
        in
        r
      in
      { theta; meerkat = run Systems.Meerkat; meerkat_pb = run Systems.Meerkat_pb })
    thetas

let print_zipf_throughput points =
  let table = Table.create ~header:[ "zipf"; "MEERKAT"; "MEERKAT-PB" ] in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Printf.sprintf "%.2f" p.theta;
          mfmt p.meerkat.Runner.goodput;
          mfmt p.meerkat_pb.Runner.goodput;
        ])
    points;
  say "Peak goodput (million txns/sec) at 64 server threads:";
  Table.print table

let print_zipf_aborts points =
  let table = Table.create ~header:[ "zipf"; "MEERKAT"; "MEERKAT-PB" ] in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Printf.sprintf "%.2f" p.theta;
          pct p.meerkat.Runner.abort_rate;
          pct p.meerkat_pb.Runner.abort_rate;
        ])
    points;
  say "Abort rate (%%) at peak throughput, 64 server threads:";
  Table.print table

(* The 6a/7a (YCSB-T) and 6b/7b (Retwis) sweeps are shared between the
   throughput and abort-rate figures; cache them per invocation. *)
let ycsb_sweep_cache = ref None
let retwis_sweep_cache = ref None

let get_sweep mode cache ~workload =
  match !cache with
  | Some points -> points
  | None ->
      let points = zipf_sweep mode ~workload in
      cache := Some points;
      points

let ycsb_sweep mode =
  get_sweep mode ycsb_sweep_cache ~workload:(fun ~rng ~keys ~theta ->
      Workload.ycsb_t ~rng ~keys ~theta)

let retwis_sweep mode =
  get_sweep mode retwis_sweep_cache ~workload:(fun ~rng ~keys ~theta ->
      Workload.retwis ~rng ~keys ~theta)

let fig6a mode =
  heading "Figure 6a: YCSB-T throughput vs Zipf coefficient (64 threads)";
  say "Paper: Meerkat ~50%% ahead until ~0.87, then drops below Meerkat-PB.";
  print_zipf_throughput (ycsb_sweep mode)

let fig6b mode =
  heading "Figure 6b: Retwis throughput vs Zipf coefficient (64 threads)";
  say "Paper: Meerkat-PB roughly matches Meerkat and wins at high skew.";
  print_zipf_throughput (retwis_sweep mode)

let fig7a mode =
  heading "Figure 7a: YCSB-T abort rate vs Zipf coefficient (64 threads)";
  say "Paper: both climb past ~0.8; Meerkat slightly higher throughout.";
  print_zipf_aborts (ycsb_sweep mode)

let fig7b mode =
  heading "Figure 7b: Retwis abort rate vs Zipf coefficient (64 threads)";
  say "Paper: Retwis aborts climb faster than YCSB-T's.";
  print_zipf_aborts (retwis_sweep mode)

(* ------------------------------------------------------------------ *)
(* Extension: commit latency comparison (the paper's §6.2 claim that
   Meerkat saves a message round compared to primary-backup).          *)
(* ------------------------------------------------------------------ *)

let latency mode =
  heading "Extension: commit latency at moderate load (16 threads)";
  say "Meerkat decides after one round to the replicas; the primary-backup";
  say "systems add a primary->backup->primary round before replying.";
  let table = Table.create ~header:[ "system"; "mean us"; "p50 us"; "p99 us" ] in
  List.iter
    (fun kind ->
      let threads = 16 in
      let config =
        {
          Cluster.default_config with
          threads;
          n_clients = 2 * threads;
          keys = 4096 * threads;
          seed = mode.seed;
        }
      in
      let engine = Engine.create ~seed:mode.seed () in
      let packed, busy = Systems.build kind engine config in
      let wl =
        Workload.ycsb_t ~rng:(Mk_util.Rng.create ~seed:(mode.seed + 7919))
          ~keys:config.Cluster.keys ~theta:0.0
      in
      let r =
        Runner.run ~engine ~system:packed ~workload:wl ~n_clients:config.Cluster.n_clients
          ~warmup:500.0
          ~measure:(if mode.full then 4000.0 else 1500.0)
          ~busy
      in
      Table.add_row table
        [
          Systems.name kind;
          Printf.sprintf "%.1f" r.Runner.mean_latency;
          Printf.sprintf "%.1f" r.Runner.p50_latency;
          Printf.sprintf "%.1f" r.Runner.p99_latency;
        ])
    Systems.all;
  Table.print table

(* ------------------------------------------------------------------ *)
(* Ablations: design choices called out in DESIGN.md.                  *)
(* ------------------------------------------------------------------ *)

let ablation mode =
  heading "Ablation 1: Meerkat over the kernel UDP stack";
  say "ZCP only pays off once the transport is fast: over UDP the network";
  say "stack, not coordination, is the bottleneck (the Fig. 1 story at the";
  say "full-system level).";
  let table = Table.create ~header:[ "threads"; "Meerkat/eRPC"; "Meerkat/UDP" ] in
  List.iter
    (fun threads ->
      let run transport =
        let config =
          {
            Cluster.default_config with
            threads;
            keys = 4096 * threads;
            transport;
            seed = mode.seed;
          }
        in
        let _, r =
          Systems.sweep Systems.Meerkat ~config
            ~workload:(fun ~rng ~keys -> Workload.ycsb_t ~rng ~keys ~theta:0.0)
            ~warmup:600.0
            ~measure:(if mode.full then 3000.0 else 1200.0)
        in
        r.Runner.goodput
      in
      Table.add_row table
        [
          string_of_int threads;
          mfmt (run Transport.erpc);
          mfmt (run Transport.udp);
        ])
    (if mode.full then [ 8; 16; 32; 64 ] else [ 8; 32 ]);
  Table.print table;

  heading "Ablation 2: clock synchronization quality";
  say "Meerkat needs synchronized clocks only for performance: skew inflates";
  say "OCC aborts (reads observe 'future' versions), never breaks safety.";
  let table =
    Table.create ~header:[ "max offset (us)"; "goodput M/s"; "abort %"; "fast path %" ]
  in
  List.iter
    (fun offset ->
      let threads = 32 in
      let config =
        {
          Cluster.default_config with
          threads;
          keys = 1024 * threads;
          clock_offset = offset;
          seed = mode.seed;
        }
      in
      let _, r =
        Systems.sweep Systems.Meerkat ~config
          ~workload:(fun ~rng ~keys -> Workload.ycsb_t ~rng ~keys ~theta:0.6)
          ~warmup:600.0
          ~measure:(if mode.full then 2500.0 else 1000.0)
      in
      Table.add_row table
        [
          Printf.sprintf "%.0f" offset;
          mfmt r.Runner.goodput;
          pct r.Runner.abort_rate;
          pct r.Runner.fast_fraction;
        ])
    [ 0.0; 10.0; 100.0; 1000.0 ];
  Table.print table;

  heading "Ablation 3: fast-path quorum availability";
  say "With one replica crashed (n=3), every transaction must take the slow";
  say "path: one extra round, lower throughput - but availability persists.";
  let run_crashed crashed =
    let threads = 16 in
    let config =
      {
        Cluster.default_config with
        threads;
        n_clients = 8 * threads;
        keys = 4096 * threads;
        seed = mode.seed;
      }
    in
    let engine = Engine.create ~seed:mode.seed () in
    let sys = Mk_meerkat.Sim_system.create engine config in
    if crashed then Mk_meerkat.Sim_system.crash_replica sys 2;
    let packed =
      Intf.Packed
        ( (module struct
            type t = Mk_meerkat.Sim_system.t

            let name = Mk_meerkat.Sim_system.name
            let threads = Mk_meerkat.Sim_system.threads
            let submit = Mk_meerkat.Sim_system.submit
            let obs = Mk_meerkat.Sim_system.obs
          end),
          sys )
    in
    let wl =
      Workload.ycsb_t ~rng:(Mk_util.Rng.create ~seed:(mode.seed + 3)) ~keys:config.Cluster.keys
        ~theta:0.0
    in
    Runner.run ~engine ~system:packed ~workload:wl ~n_clients:config.Cluster.n_clients
      ~warmup:600.0
      ~measure:(if mode.full then 2500.0 else 1200.0)
      ~busy:(fun () -> Mk_meerkat.Sim_system.server_busy_fraction sys)
  in
  let healthy = run_crashed false and degraded = run_crashed true in
  let table = Table.create ~header:[ "cluster"; "goodput M/s"; "fast path %"; "p50 us" ] in
  Table.add_row table
    [
      "3/3 replicas";
      mfmt healthy.Runner.goodput;
      pct healthy.Runner.fast_fraction;
      Printf.sprintf "%.1f" healthy.Runner.p50_latency;
    ];
  Table.add_row table
    [
      "2/3 replicas";
      mfmt degraded.Runner.goodput;
      pct degraded.Runner.fast_fraction;
      Printf.sprintf "%.1f" degraded.Runner.p50_latency;
    ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* Extension: the availability gap of an in-protocol epoch change.     *)
(* ------------------------------------------------------------------ *)

let recovery mode =
  heading "Extension: replica crash + message-driven epoch change timeline";
  say "A replica crashes at t=2ms; the epoch-change protocol re-integrates";
  say "it at t=4ms. Commit throughput per 0.5 ms bucket:";
  let threads = 8 in
  let config =
    {
      Cluster.default_config with
      threads;
      n_clients = 4 * threads;
      keys = 2048 * threads;
      seed = mode.seed;
    }
  in
  let engine = Engine.create ~seed:mode.seed () in
  let sys = Mk_meerkat.Sim_system.create engine config in
  let module S = Mk_meerkat.Sim_system in
  let bucket = 500.0 in
  let horizon = if mode.full then 12_000.0 else 8_000.0 in
  let nbuckets = int_of_float (horizon /. bucket) in
  let commits = Array.make nbuckets 0 in
  let wl =
    Workload.ycsb_t ~rng:(Mk_util.Rng.create ~seed:(mode.seed + 1)) ~keys:config.Cluster.keys
      ~theta:0.0
  in
  let rec client c =
    let req = Workload.next wl in
    S.submit sys ~client:c req ~on_done:(fun ~committed ->
        let now = Engine.now engine in
        if committed && now < horizon then begin
          let b = int_of_float (now /. bucket) in
          commits.(b) <- commits.(b) + 1
        end;
        if now < horizon then client c)
  in
  for c = 0 to config.Cluster.n_clients - 1 do
    client c
  done;
  Engine.schedule_at engine 2_000.0 (fun () -> S.crash_replica sys 2);
  let change_done = ref nan in
  Engine.schedule_at engine 4_000.0 (fun () ->
      S.trigger_epoch_change sys ~recovering:[ 2 ] ~on_complete:(fun ~success ->
          if success then change_done := Engine.now engine));
  Engine.run ~until:horizon engine;
  let table = Table.create ~header:[ "time (ms)"; "commits/bucket"; "phase" ] in
  Array.iteri
    (fun i count ->
      let t0 = float_of_int i *. bucket in
      let phase =
        if t0 < 2_000.0 then "healthy (fast path)"
        else if t0 < 4_000.0 then "degraded (slow path)"
        else if t0 < !change_done then "epoch change"
        else "recovered (fast path)"
      in
      Table.add_row table
        [ Printf.sprintf "%.1f-%.1f" (t0 /. 1e3) ((t0 +. bucket) /. 1e3);
          string_of_int count; phase ])
    commits;
  Table.print table;
  say "epoch change completed at t=%.2f ms (gap: %.0f us of paused validation)"
    (!change_done /. 1e3) (!change_done -. 4_000.0)

(* ------------------------------------------------------------------ *)
(* Trace: one instrumented Meerkat window, exported as a Chrome trace. *)
(* ------------------------------------------------------------------ *)

(* Run Meerkat with tracing on under conditions that exercise every
   lifecycle phase: a lossy transport forces retransmissions, and a
   replica crash mid-window forces the slow path (n=3, so the fast
   quorum of 3 is unreachable afterwards); before the crash the fast
   path dominates. *)
let trace_experiment mode =
  heading "Trace: Meerkat lifecycle phases under drops + a replica crash";
  let threads = 8 in
  let config =
    {
      Cluster.default_config with
      threads;
      n_clients = 4 * threads;
      keys = 2048 * threads;
      transport = Transport.with_drop Transport.erpc 0.05;
      seed = mode.seed;
    }
  in
  let engine = Engine.create ~seed:mode.seed () in
  let obs =
    Mk_obs.Obs.create ~trace:true ~clock:(fun () -> Engine.now engine) ()
  in
  let sys = Mk_meerkat.Sim_system.create ~obs engine config in
  let packed =
    Intf.Packed
      ( (module struct
          type t = Mk_meerkat.Sim_system.t

          let name = Mk_meerkat.Sim_system.name
          let threads = Mk_meerkat.Sim_system.threads
          let submit = Mk_meerkat.Sim_system.submit
          let obs = Mk_meerkat.Sim_system.obs
        end),
        sys )
  in
  let warmup = 300.0 in
  let measure = if mode.full then 3000.0 else 1500.0 in
  Engine.schedule_at engine (warmup +. (measure /. 2.0)) (fun () ->
      Mk_meerkat.Sim_system.crash_replica sys 2);
  let wl =
    Workload.ycsb_t
      ~rng:(Mk_util.Rng.create ~seed:(mode.seed + 7919))
      ~keys:config.Cluster.keys ~theta:0.0
  in
  let r =
    Runner.run ~engine ~system:packed ~workload:wl
      ~n_clients:config.Cluster.n_clients ~warmup ~measure
      ~busy:(fun () -> Mk_meerkat.Sim_system.server_busy_fraction sys)
  in
  say "replica 2 crashes at t=%.0f us; drop probability %.0f%%."
    (warmup +. (measure /. 2.0))
    (100.0 *. config.Cluster.transport.Transport.drop_prob);
  Format.printf "%a@." Runner.pp_result r;
  let path = Option.value mode.trace ~default:"trace.json" in
  (try
     Mk_obs.Obs.write_chrome_trace obs ~path;
     say "wrote %d trace events to %s (load in Perfetto / chrome://tracing)"
       (Mk_obs.Tracer.length (Mk_obs.Obs.tracer obs))
       path
   with Sys_error msg -> Format.eprintf "cannot write trace: %s@." msg);
  if mode.metrics then begin
    say "";
    print_string (Mk_obs.Obs.metrics_dump obs)
  end

(* ------------------------------------------------------------------ *)
(* Chaos: the Jepsen-style nemesis matrix with detector-driven
   recovery, summarized as a table.                                    *)
(* ------------------------------------------------------------------ *)

let chaos mode =
  heading "Chaos: nemesis fault-injection matrix (detector-driven recovery)";
  say "Every fault is injected by the seeded nemesis; every epoch change and";
  say "view change is initiated by the in-system failure detectors.";
  let module Chaos = Mk_harness.Chaos in
  let module Nemesis = Mk_fault.Nemesis in
  let profiles =
    match mode.nemesis with Some p -> [ p ] | None -> Nemesis.all
  in
  let base = Option.value mode.nemesis_seed ~default:mode.seed in
  let seeds =
    List.init (if mode.full then 8 else 2) (fun i -> base + i)
  in
  let table =
    Table.create
      ~header:
        [ "profile"; "seed"; "commits"; "aborts"; "dup/delay/drop"; "ec"; "vc";
          "invariants" ]
  in
  let failures = ref 0 in
  List.iter
    (fun (r : Chaos.report) ->
      if not (Chaos.passed r) then begin
        incr failures;
        Format.printf "%a@." Chaos.pp_report r
      end;
      Table.add_row table
        [
          Nemesis.to_string r.Chaos.r_cfg.Chaos.profile;
          string_of_int r.Chaos.r_cfg.Chaos.seed;
          string_of_int r.Chaos.committed_acks;
          string_of_int r.Chaos.aborted_acks;
          Printf.sprintf "%d/%d/%d" r.Chaos.duplicated r.Chaos.delayed
            r.Chaos.dropped;
          string_of_int r.Chaos.epoch_changes;
          string_of_int r.Chaos.view_changes;
          (if Chaos.passed r then "all ok" else "FAILED");
        ])
    (Chaos.matrix ~seeds ~profiles ~cfg:Chaos.default_cfg);
  Table.print table;
  if !failures > 0 then say "%d run(s) FAILED an end-of-run invariant." !failures

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot code paths.                    *)
(* ------------------------------------------------------------------ *)

let micro mode =
  heading "Micro-benchmarks (bechamel, ns/op of real code paths)";
  let open Bechamel in
  let store = Mk_storage.Vstore.create () in
  for key = 0 to 65535 do
    Mk_storage.Vstore.load store ~key ~value:0
  done;
  let rng = Mk_util.Rng.create ~seed:mode.seed in
  let zipf = Mk_workload.Zipf.create ~rng ~n:65536 ~theta:0.9 () in
  let counter = ref 0 in
  let next_int () =
    counter := (!counter + 1) land 0xFFFF;
    !counter
  in
  let ts_a = Mk_clock.Timestamp.make ~time:1.0 ~client_id:1 in
  let ts_b = Mk_clock.Timestamp.make ~time:2.0 ~client_id:2 in
  let trecord = Mk_storage.Trecord.create ~cores:8 in
  let tests =
    [
      Test.make ~name:"occ-validate-commit-rmw"
        (Staged.stage (fun () ->
             let key = next_int () in
             let e = Mk_storage.Vstore.find_exn store key in
             let _, wts = Mk_storage.Vstore.read_versioned e in
             let txn =
               Mk_storage.Txn.make
                 ~tid:(Mk_clock.Timestamp.Tid.make ~seq:(next_int ()) ~client_id:1)
                 ~read_set:[ { key; wts } ]
                 ~write_set:[ { key; value = 1 } ]
             in
             let stamp =
               Mk_clock.Timestamp.make ~time:(float_of_int !counter) ~client_id:1
             in
             match Mk_storage.Occ.validate store txn ~ts:stamp with
             | `Ok -> Mk_storage.Occ.finish store txn ~ts:stamp ~commit:true
             | `Abort -> ()));
      Test.make ~name:"vstore-versioned-read"
        (Staged.stage (fun () ->
             let e = Mk_storage.Vstore.find_exn store (next_int ()) in
             ignore (Mk_storage.Vstore.read_versioned e)));
      Test.make ~name:"zipf-sample-theta0.9"
        (Staged.stage (fun () -> ignore (Mk_workload.Zipf.sample zipf)));
      Test.make ~name:"timestamp-compare"
        (Staged.stage (fun () -> ignore (Mk_clock.Timestamp.compare ts_a ts_b)));
      Test.make ~name:"trecord-add-find-remove"
        (Staged.stage (fun () ->
             let tid = Mk_clock.Timestamp.Tid.make ~seq:(next_int ()) ~client_id:2 in
             let txn = Mk_storage.Txn.make ~tid ~read_set:[] ~write_set:[] in
             let core = Mk_storage.Trecord.partition_of_tid trecord tid in
             ignore
               (Mk_storage.Trecord.add trecord ~core ~txn ~ts:ts_a
                  ~status:Mk_storage.Txn.Validated_ok);
             ignore (Mk_storage.Trecord.find trecord ~core tid);
             Mk_storage.Trecord.remove trecord ~core tid));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if mode.full then 1.0 else 0.25))
      ~kde:None ()
  in
  let table = Table.create ~header:[ "benchmark"; "ns/op"; "r^2" ] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Printf.sprintf "%.1f" e
            | _ -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "-"
          in
          Table.add_row table [ name; estimate; r2 ])
        results)
    tests;
  Table.print table;

  say "";
  say "Real-domains counter demonstration (this machine has %d core(s);"
    (Domain.recommended_domain_count ());
  say "the paper's effect needs several physical cores to show):";
  let increments = if mode.full then 2_000_000 else 400_000 in
  let domains = min 4 (max 2 (Domain.recommended_domain_count ())) in
  let shared = Mk_multicore.Counter_bench.shared_atomic ~domains ~increments_per_domain:increments in
  let sharded = Mk_multicore.Counter_bench.sharded ~domains ~increments_per_domain:increments in
  say "  shared atomic counter: %.1f M increments/s (%d domains)"
    (shared.Mk_multicore.Counter_bench.ops_per_second /. 1e6)
    domains;
  say "  per-domain counters:   %.1f M increments/s (%d domains)"
    (sharded.Mk_multicore.Counter_bench.ops_per_second /. 1e6)
    domains

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Live: the protocol on real OCaml 5 domains, swept over server
   domains.                                                            *)
(* ------------------------------------------------------------------ *)

(* Unlike every experiment above, this one runs on the machine's real
   cores: absolute numbers depend on the host (and on core count —
   the sweep only scales when the hardware has cores to give it). The
   committed history of every point is checked for one-copy
   serializability, and the whole sweep lands in BENCH_live.json. *)
let live mode =
  heading "Live: Meerkat on real domains, 1..N server domains (YCSB-T)";
  let max_domains = if mode.full then 8 else 4 in
  let txns = if mode.full then 200 else 50 in
  let table =
    Table.create
      ~header:
        [ "domains"; "clients"; "committed"; "abort %"; "txn/s"; "p50 us";
          "p99 us"; "slow"; "serializable" ]
  in
  let points =
    List.map
      (fun domains ->
        let clients = 4 * domains in
        let cfg =
          {
            Mk_live.Runtime.default_config with
            server_domains = domains;
            coordinators = 2;
            clients;
            (* Constant contention as the system scales: keyspace
               proportional to cores, low Zipf skew (§6.2). *)
            keys = 1024 * domains;
            theta = 0.3;
            txns_per_client = txns;
            seed = mode.seed;
          }
        in
        let r = Mk_live.Runtime.run cfg in
        let serializable =
          match Mk_harness.Checker.check r.Mk_live.Runtime.committed with
          | Ok () -> true
          | Error _ -> false
        in
        Table.add_row table
          [
            string_of_int domains;
            string_of_int clients;
            string_of_int r.Mk_live.Runtime.committed_count;
            pct r.Mk_live.Runtime.abort_rate;
            Printf.sprintf "%.0f" r.Mk_live.Runtime.throughput;
            Printf.sprintf "%.0f" r.Mk_live.Runtime.p50_us;
            Printf.sprintf "%.0f" r.Mk_live.Runtime.p99_us;
            string_of_int r.Mk_live.Runtime.slow_path;
            (if serializable then "yes" else "NO");
          ];
        (r, serializable))
      (List.init max_domains (fun i -> i + 1))
  in
  Table.print table;
  (* Open-loop latency sweep: a fixed topology offered a fixed
     aggregate rate (the paper's load-latency methodology). Latency is
     measured from each transaction's INTENDED launch instant, so the
     points past saturation report the queueing delay honestly instead
     of the closed-loop's self-throttled figures; [alloc_per_txn] rides
     along as the allocation regression signal. *)
  heading "Live: open-loop load-latency sweep (fixed offered rate)";
  let ol_duration = if mode.full then 2.0 else 0.5 in
  let ol_rates =
    if mode.full then [ 4_000.0; 8_000.0; 16_000.0; 32_000.0; 48_000.0 ]
    else [ 4_000.0; 16_000.0 ]
  in
  let ol_table =
    Table.create
      ~header:
        [ "offered/s"; "committed"; "txn/s"; "p50 us"; "p99 us";
          "alloc w/txn"; "serializable" ]
  in
  let ol_points =
    List.map
      (fun rate ->
        let cfg =
          {
            Mk_live.Runtime.default_config with
            server_domains = 2;
            coordinators = 2;
            clients = 8;
            keys = 4096;
            theta = 0.3;
            duration = Some ol_duration;
            offered_rate = Some rate;
            seed = mode.seed;
          }
        in
        let r = Mk_live.Runtime.run cfg in
        let serializable =
          match Mk_harness.Checker.check r.Mk_live.Runtime.committed with
          | Ok () -> true
          | Error _ -> false
        in
        Table.add_row ol_table
          [
            Printf.sprintf "%.0f" rate;
            string_of_int r.Mk_live.Runtime.committed_count;
            Printf.sprintf "%.0f" r.Mk_live.Runtime.throughput;
            Printf.sprintf "%.0f" r.Mk_live.Runtime.p50_us;
            Printf.sprintf "%.0f" r.Mk_live.Runtime.p99_us;
            string_of_int r.Mk_live.Runtime.alloc_per_txn;
            (if serializable then "yes" else "NO");
          ];
        (rate, r, serializable))
      ol_rates
  in
  Table.print ol_table;
  let body =
    String.concat ",\n  "
      (List.map
         (fun (r, serializable) ->
           Printf.sprintf "{\"serializable\": %b, \"report\": %s}" serializable
             (Mk_live.Runtime.report_json r))
         points)
  in
  let ol_body =
    String.concat ",\n  "
      (List.map
         (fun (rate, r, serializable) ->
           Printf.sprintf
             "{\"offered_rate\": %.0f, \"serializable\": %b, \"report\": %s}"
             rate serializable
             (Mk_live.Runtime.report_json r))
         ol_points)
  in
  (try
     let oc = open_out "BENCH_live.json" in
     Printf.fprintf oc
       "{\"experiment\": \"live\", \"sweep\": [\n\
       \  %s\n\
        ], \"open_loop\": [\n\
       \  %s\n\
        ]}\n"
       body ol_body;
     close_out oc;
     say "wrote BENCH_live.json"
   with Sys_error msg -> Format.eprintf "cannot write BENCH_live.json: %s@." msg);
  if List.exists (fun (_, s) -> not s) points then
    failwith "live: serializability violation in a committed history";
  if List.exists (fun (_, _, s) -> not s) ol_points then
    failwith "live: serializability violation in an open-loop history"

(* ------------------------------------------------------------------ *)
(* Shard: goodput vs shard count x cross-shard ratio (sim backend).    *)
(* ------------------------------------------------------------------ *)

(* Each shard is a full replicated Meerkat group with its own server
   threads on one discrete-event engine; cross-shard transactions run
   the client-side 2PC (DESIGN.md §13, paper §5.2.4). With per-shard
   resources held constant, aggregate goodput must grow with the
   shard count — the minimal-coordination claim SCAR's numbers set
   the bar for — and the cross-shard ratio prices the 2PC overhead.
   Every point's merged global history is checked serializable and
   the whole sweep lands in BENCH_shard.json. *)
let shard mode =
  heading "Shard: goodput vs shard count x cross-shard ratio (sim, RMW-2)";
  say "Per-shard resources held constant; the workload is two-key RMW with";
  say "the locality knob forcing the given fraction of cross-shard spans.";
  let threads = 8 (* per shard *) in
  let keys_per_thread = if mode.full then 4096 else 2048 in
  let measure = if mode.full then 3000.0 else 1200.0 in
  let shard_axis = [ 1; 2; 4 ] in
  let cross_axis = [ 0.0; 0.1; 0.3 ] in
  let module Sharded = Mk_systems.Sharded_sim in
  let point ~shards ~cross =
    let engine = Engine.create ~seed:mode.seed () in
    let config =
      {
        Cluster.default_config with
        threads;
        (* Constant contention per shard: global keyspace grows with
           the shard count (§6.2 methodology). *)
        keys = keys_per_thread * threads * shards;
        seed = mode.seed;
      }
    in
    let sys = Sharded.create engine ~shards config in
    let packed =
      Intf.Packed
        ( (module struct
            type t = Sharded.t

            let name = Sharded.name
            let threads = Sharded.threads
            let submit = Sharded.submit
            let obs = Sharded.obs
          end),
          sys )
    in
    let wl =
      Workload.rmw_pair
        ~rng:(Mk_util.Rng.create ~seed:(mode.seed + 7919))
        ~keys:config.Cluster.keys ~theta:0.0
    in
    if shards > 1 then
      Workload.set_locality wl (Some { Workload.shards; cross });
    let r =
      Runner.run ~engine ~system:packed ~workload:wl ~n_clients:(16 * shards)
        ~warmup:(measure /. 2.0) ~measure
        ~busy:(fun () -> Sharded.server_busy_fraction sys)
    in
    let serializable =
      match Mk_harness.Checker.check (Sharded.history sys) with
      | Ok () -> true
      | Error _ -> false
    in
    (shards, cross, r, serializable)
  in
  let points =
    List.concat_map
      (fun shards ->
        List.map (fun cross -> point ~shards ~cross) cross_axis)
      shard_axis
  in
  let table =
    Table.create
      ~header:
        ("shards"
        :: List.map
             (fun c -> Printf.sprintf "cross=%.0f%%" (100.0 *. c))
             cross_axis)
  in
  List.iter
    (fun shards ->
      let row =
        List.filter_map
          (fun (s, _, r, _) ->
            if s = shards then Some (mfmt r.Runner.goodput) else None)
          points
      in
      Table.add_row table (string_of_int shards :: row))
    shard_axis;
  say "Goodput (million committed txns/sec), %d server threads per shard:"
    threads;
  Table.print table;
  let goodput_at ~shards ~cross =
    List.find_map
      (fun (s, c, r, _) ->
        if s = shards && c = cross then Some r.Runner.goodput else None)
      points
    |> Option.value ~default:0.0
  in
  let base = goodput_at ~shards:1 ~cross:0.1 in
  let top = goodput_at ~shards:4 ~cross:0.1 in
  let ratio = if base > 0.0 then top /. base else 0.0 in
  say "1 -> 4 shard goodput at 10%% cross-shard: %.2fx (target >= 1.5x)" ratio;
  let body =
    String.concat ",\n  "
      (List.map
         (fun (s, c, r, serializable) ->
           Printf.sprintf
             "{\"shards\": %d, \"cross\": %.2f, \"goodput\": %.1f, \
              \"committed\": %d, \"abort_rate\": %.4f, \"p50_us\": %.1f, \
              \"p99_us\": %.1f, \"fast_fraction\": %.4f, \"serializable\": \
              %b}"
             s c r.Runner.goodput r.Runner.committed r.Runner.abort_rate
             r.Runner.p50_latency r.Runner.p99_latency r.Runner.fast_fraction
             serializable)
         points)
  in
  (try
     let oc = open_out "BENCH_shard.json" in
     Printf.fprintf oc
       "{\"experiment\": \"shard\", \"threads_per_shard\": %d, \
        \"scaling_1_to_4_at_10pct\": %.3f, \"sweep\": [\n\
       \  %s\n\
        ]}\n"
       threads ratio body;
     close_out oc;
     say "wrote BENCH_shard.json"
   with Sys_error msg ->
     Format.eprintf "cannot write BENCH_shard.json: %s@." msg);
  if List.exists (fun (_, _, _, s) -> not s) points then
    failwith "shard: serializability violation in a merged history";
  if ratio < 1.5 then
    failwith
      (Printf.sprintf
         "shard: goodput scaled only %.2fx from 1 to 4 shards at 10%% cross"
         ratio)

let experiments =
  [
    ("fig1", fig1);
    ("table1", table1);
    ("table2", table2);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6a", fig6a);
    ("fig6b", fig6b);
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("latency", latency);
    ("ablation", ablation);
    ("recovery", recovery);
    ("chaos", chaos);
    ("trace", trace_experiment);
    ("micro", micro);
    ("live", live);
    ("shard", shard);
  ]

let run_experiments names full seed trace metrics nemesis nemesis_seed =
  let mode = { full; seed; trace; metrics; nemesis; nemesis_seed } in
  let names =
    if names <> [] then names
    else if trace <> None || metrics then
      (* [--trace FILE] / [--metrics] with no experiment names: run just
         the instrumented trace experiment. *)
      [ "trace" ]
    else if nemesis <> None || nemesis_seed <> None then
      (* [--nemesis] / [--nemesis-seed] with no experiment names: run
         just the chaos matrix. *)
      [ "chaos" ]
    else List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f mode
      | None ->
          Format.eprintf "unknown experiment %S; known: %s@." name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    names;
  say "";
  say "total wall time: %.1f s%s" (Unix.gettimeofday () -. t0)
    (if full then " (full mode)" else " (quick mode; pass --full for longer windows)")

let () =
  let open Cmdliner in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiments to run (default: all). One of: fig1, table1, table2, \
                 fig4, fig5, fig6a, fig6b, fig7a, fig7b, latency, ablation, recovery, \
                 chaos, trace, micro.")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Longer measurement windows and finer sweeps.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Root random seed (runs are deterministic).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace (trace_event JSON, Perfetto-loadable) of \
                   the instrumented run to $(docv); implies the 'trace' experiment \
                   when no experiment names are given.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the metrics registry dump (counters, gauges, per-phase \
                   histograms) after the instrumented run; implies the 'trace' \
                   experiment when no experiment names are given.")
  in
  let nemesis =
    let profile_conv =
      Arg.conv
        ( (fun s ->
            match Mk_fault.Nemesis.of_string s with
            | Some p -> Ok p
            | None ->
                Error
                  (`Msg
                     (Printf.sprintf "unknown nemesis profile %S; known: %s" s
                        (String.concat ", "
                           (List.map Mk_fault.Nemesis.to_string
                              Mk_fault.Nemesis.all)))) ),
          fun ppf p -> Format.pp_print_string ppf (Mk_fault.Nemesis.to_string p) )
    in
    Arg.(value & opt (some profile_conv) None
         & info [ "nemesis" ] ~docv:"PROFILE"
             ~doc:"Restrict the chaos experiment to one nemesis profile (calm, \
                   dup, reorder, partition, crash-replica, crash-coordinator, \
                   combo); implies the 'chaos' experiment when no experiment \
                   names are given.")
  in
  let nemesis_seed =
    Arg.(value & opt (some int) None
         & info [ "nemesis-seed" ]
             ~doc:"Base seed for the chaos experiment's seed range (default: \
                   --seed); implies the 'chaos' experiment when no experiment \
                   names are given.")
  in
  let term =
    Term.(const run_experiments $ names $ full $ seed $ trace $ metrics $ nemesis
          $ nemesis_seed)
  in
  let info =
    Cmd.info "meerkat-bench"
      ~doc:"Regenerate the Meerkat paper's tables and figures in simulation"
  in
  exit (Cmd.eval (Cmd.v info term))
