(* Distributed transactions (§5.2.4): an order-processing shop whose
   inventory and order-count tables live on different shards, each
   shard a full replicated Meerkat group. Placing an order
   decrements stock in shard A and increments the order tally in
   shard B — atomically, or not at all.

   Run with: dune exec examples/sharded_shop.exe *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Sharded = Mk_systems.Sharded_sim
module Cluster = Mk_cluster.Cluster

(* Two shards (mod policy): even keys (stock) on shard 0, odd keys
   (order tallies) on shard 1. *)
let stock_key item = 2 * item
let tally_key item = (2 * item) + 1
let items = 8
let initial_stock = 5

let () =
  let engine = Engine.create ~seed:33 () in
  let cfg = { Cluster.default_config with threads = 2; n_clients = 8; keys = 64 } in
  let shop = Sharded.create engine ~shards:2 cfg in
  Format.printf "Shop: 2 shards x 3 replicas; stock on shard 0, order@.";
  Format.printf "tallies on shard 1.@.";

  (* Stock the shelves. *)
  for item = 0 to items - 1 do
    Sharded.submit shop ~client:0
      { Intf.reads = [||]; writes = [| (stock_key item, initial_stock) |] }
      ~on_done:(fun ~committed:_ -> ())
  done;
  Engine.run engine;
  Format.printf "Stocked %d items with %d units each.@." items initial_stock;

  (* Clients race to buy. An order reads the stock and the tally in a
     cross-shard interactive transaction whose writes are computed
     from the values read: OCC validation in both shards ensures a
     commit means the decrement/increment applied to current values. *)
  let orders = ref 0 and rejected = ref 0 and sold_out = ref 0 in
  let rng = Mk_util.Rng.create ~seed:17 in
  let rec shopper client remaining =
    if remaining > 0 then begin
      let item = Mk_util.Rng.int rng items in
      Sharded.submit_interactive shop ~client
        ~reads:[| stock_key item; tally_key item |]
        ~compute:(fun snapshot ->
          let stock = snapshot.(0) and tally = snapshot.(1) in
          if stock <= 0 then [||] (* sold out: read-only no-op *)
          else [| (stock_key item, stock - 1); (tally_key item, tally + 1) |])
        ~on_done:(fun ~committed ->
          if committed then begin
            (match Sharded.read_committed shop ~replica:0 ~key:(stock_key item) with
            | Some 0 -> incr sold_out
            | _ -> ());
            incr orders;
            shopper client (remaining - 1)
          end
          else begin
            (* Another shopper won the race; OCC rejected us in at
               least one shard — and therefore in both. *)
            incr rejected;
            shopper client remaining
          end)
    end
  in
  for c = 0 to 7 do
    shopper c 10
  done;
  Engine.run ~max_events:20_000_000 engine;

  Format.printf "@.%d orders committed, %d attempts rejected (%d sold-out sightings).@."
    !orders !rejected !sold_out;

  (* The invariant that only atomic cross-shard commits preserve:
     units_sold(item) = initial_stock - stock(item) = tally(item). *)
  let consistent = ref true in
  for item = 0 to items - 1 do
    let stock =
      Option.value ~default:0 (Sharded.read_committed shop ~replica:1 ~key:(stock_key item))
    in
    let tally =
      Option.value ~default:0 (Sharded.read_committed shop ~replica:2 ~key:(tally_key item))
    in
    let sold = initial_stock - stock in
    Format.printf "  item %d: stock=%d tally=%d (%s)@." item stock tally
      (if sold = tally then "consistent" else "MISMATCH");
    if sold <> tally then consistent := false
  done;
  Format.printf "@.%s@."
    (if !consistent then
       "Every item's tally matches its stock decrement: the two shards\n\
        commit or abort together, even though each runs its own quorums."
     else "INVARIANT VIOLATED")
