(* A Twitter-like application on Meerkat: the Retwis workload of
   Table 2 driven through the public API, with a live throughput and
   abort report — a miniature of the paper's Fig. 5/6b setup.

   Run with: dune exec examples/retwis_app.exe *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Meerkat = Mk_meerkat.Sim_system
module Workload = Mk_workload.Workload
module Runner = Mk_harness.Runner

let () =
  let threads = 8 in
  let keys = 4096 * threads in
  let n_clients = 8 * threads in
  Format.printf
    "Retwis on Meerkat: %d server threads x 3 replicas, %d keys, %d closed-loop \
     clients.@."
    threads keys n_clients;
  Format.printf "Transaction mix (Table 2 of the paper):@.";
  Format.printf "  5%%  Add User        (1 get, 3 puts)@.";
  Format.printf "  15%% Follow/Unfollow (2 gets, 2 puts)@.";
  Format.printf "  30%% Post Tweet      (3 gets, 5 puts)@.";
  Format.printf "  50%% Load Timeline   (1-10 gets)@.";

  List.iter
    (fun theta ->
      let engine = Engine.create ~seed:11 () in
      let cfg =
        { Meerkat.default_config with threads; n_clients; keys; seed = 11 }
      in
      let sys = Meerkat.create engine cfg in
      let packed =
        Intf.Packed
          ( (module struct
              type t = Meerkat.t

              let name = Meerkat.name
              let threads = Meerkat.threads
              let submit = Meerkat.submit
              let obs = Meerkat.obs
            end),
            sys )
      in
      let workload =
        Workload.retwis ~rng:(Mk_util.Rng.create ~seed:5) ~keys ~theta
      in
      let result =
        Runner.run ~engine ~system:packed ~workload ~n_clients ~warmup:500.0
          ~measure:2000.0
          ~busy:(fun () -> Meerkat.server_busy_fraction sys)
      in
      Format.printf
        "@.zipf %.2f: %.2f M txn/s, abort rate %.1f%%, p50/p99 latency %.0f/%.0f \
         us, %.0f%% fast path@."
        theta
        (result.Runner.goodput /. 1e6)
        (100.0 *. result.Runner.abort_rate)
        result.Runner.p50_latency result.Runner.p99_latency
        (100.0 *. result.Runner.fast_fraction);
      let mix = Workload.mix_report workload in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 mix in
      List.iter
        (fun (label, count) ->
          Format.printf "    %-16s %5.1f%%@." label
            (100.0 *. float_of_int count /. float_of_int total))
        mix)
    [ 0.0; 0.6; 0.9 ];
  Format.printf
    "@.Longer, read-heavy transactions commit mostly on the fast path at low@.\
     skew; at zipf 0.9 the OCC abort rate climbs, as in Fig. 6b/7b.@."
