(* Failure handling walk-through (§5.3): replica crash and recovery
   via the epoch-change protocol, and coordinator failure handled by a
   backup coordinator.

   Run with: dune exec examples/fault_tolerance.exe *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Meerkat = Mk_meerkat.Sim_system
module Replica = Mk_meerkat.Replica
module Recovery = Mk_meerkat.Recovery
module Quorum = Mk_meerkat.Quorum
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn

let step = ref 0

let say fmt =
  incr step;
  Format.printf "@.%d. " !step;
  Format.printf fmt

let () =
  let engine = Engine.create ~seed:21 () in
  let cfg = { Meerkat.default_config with threads = 2; n_clients = 4; keys = 64 } in
  let sys = Meerkat.create engine cfg in

  say "Committing 20 transactions on a healthy 3-replica cluster.@.";
  let committed = ref 0 in
  for i = 1 to 20 do
    Meerkat.submit sys ~client:(i mod 4)
      { Intf.reads = [| i |]; writes = [| (i, i * 10) |] }
      ~on_done:(fun ~committed:ok -> if ok then incr committed)
  done;
  Engine.run engine;
  Format.printf "   %d/20 committed; all on the fast path.@." !committed;

  say "Replica 2 crashes (fail-stop, no stable storage: state is gone).@.";
  Meerkat.crash_replica sys 2;

  say "The cluster keeps processing with a majority (slow path only).@.";
  let during = ref 0 in
  for i = 21 to 30 do
    Meerkat.submit sys ~client:(i mod 4)
      { Intf.reads = [| i |]; writes = [| (i, i * 10) |] }
      ~on_done:(fun ~committed:ok -> if ok then incr during)
  done;
  Engine.run engine;
  let counters = Meerkat.counters sys in
  Format.printf "   %d/10 committed while degraded (%d slow-path decisions).@."
    !during counters.Intf.slow_path;

  say
    "Replica 2 restarts empty and rejoins through the epoch-change protocol:@.\
  \   replicas pause validation, a recovery coordinator merges their trecords,@.\
  \   and the recovering replica receives a store snapshot.@.";
  let ok = Meerkat.run_epoch_change sys ~recovering:[ 2 ] in
  Format.printf "   epoch change %s; replica 2 is at epoch %d.@."
    (if ok then "succeeded" else "FAILED")
    (Replica.epoch (Meerkat.replicas sys).(2));
  (match Meerkat.read_committed sys ~replica:2 ~key:25 with
  | Some v -> Format.printf "   replica 2 recovered key 25 = %d (state transfer).@." v
  | None -> Format.printf "   replica 2 missing key 25!@.");

  say "Full-strength cluster again: fast path returns.@.";
  let fast_before = (Meerkat.counters sys).Intf.fast_path in
  let post = ref 0 in
  for i = 31 to 40 do
    Meerkat.submit sys ~client:(i mod 4)
      { Intf.reads = [| i |]; writes = [| (i, i * 10) |] }
      ~on_done:(fun ~committed:ok -> if ok then incr post)
  done;
  Engine.run engine;
  Format.printf "   %d/10 committed, %d on the fast path.@." !post
    ((Meerkat.counters sys).Intf.fast_path - fast_before);

  (* --- Coordinator failure (§5.3.2), driven at the replica API level
     so the message sequence is visible. --- *)
  say
    "A transaction coordinator dies mid-commit: it validated at replicas 0@.\
  \   and 1, then vanished without deciding.@.";
  let replicas = Meerkat.replicas sys in
  let quorum = Quorum.create ~n:3 in
  let orphan =
    Txn.make
      ~tid:(Timestamp.Tid.make ~seq:999 ~client_id:77)
      ~read_set:[ { key = 50; wts = Timestamp.zero } ]
      ~write_set:[ { key = 50; value = 5050 } ]
  in
  let core = 0 in
  let ts = Timestamp.make ~time:1e9 ~client_id:77 in
  ignore (Replica.handle_validate replicas.(0) ~core ~txn:orphan ~ts);
  ignore (Replica.handle_validate replicas.(1) ~core ~txn:orphan ~ts);

  say
    "Replica 1 notices the stalled transaction and starts a view change;@.\
  \   the view-1 backup coordinator polls a majority (Paxos-style prepare).@.";
  let replies =
    List.filter_map
      (fun r ->
        match Replica.handle_coord_change r ~core ~tid:orphan.Txn.tid ~view:1 with
        | Some (`View_ok None) -> Some (Replica.id r, Recovery.No_record)
        | Some (`View_ok (Some record)) -> Some (Replica.id r, Recovery.Record record)
        | Some (`Stale _) | None -> None)
      [ replicas.(0); replicas.(1); replicas.(2) ]
  in
  let outcome = Recovery.choose ~quorum ~replies in
  Format.printf "   outcome selection says: %s (two VALIDATED-OK replies mean@."
    (match outcome with `Commit -> "COMMIT" | `Abort -> "ABORT");
  Format.printf "   the fast path may already have committed — commit is the@.";
  Format.printf "   only safe choice).@.";

  say "The backup coordinator drives the slow path at view 1 and commits.@.";
  let decision = (outcome :> [ `Commit | `Abort ]) in
  let acks =
    List.filter_map
      (fun r -> Replica.handle_accept r ~core ~txn:orphan ~ts ~decision ~view:1)
      [ replicas.(0); replicas.(1); replicas.(2) ]
  in
  Format.printf "   accept acks: %d (need %d).@." (List.length acks)
    (Quorum.majority quorum);
  List.iter
    (fun r ->
      ignore (Replica.handle_commit r ~core ~txn:orphan ~ts ~commit:(outcome = `Commit)))
    [ replicas.(0); replicas.(1); replicas.(2) ];
  (match Meerkat.read_committed sys ~replica:2 ~key:50 with
  | Some v -> Format.printf "   key 50 = %d on every replica.@." v
  | None -> Format.printf "   key 50 missing!@.");

  say "The original coordinator, if it comes back, is fenced by the view:@.";
  (match
     Replica.handle_accept replicas.(0) ~core ~txn:orphan ~ts ~decision:`Abort
       ~view:0
   with
  | Some (`Stale v) -> Format.printf "   its view-0 accept is rejected (stale, view=%d).@." v
  | Some (`Finalized st) ->
      Format.printf "   replica already finalized: %s.@." (Txn.status_to_string st)
  | Some `Accepted -> Format.printf "   UNEXPECTED: view-0 accept succeeded!@."
  | None -> Format.printf "   replica unavailable.@.");

  Format.printf "@.Done: both failure modes recovered without blocking the rest@.";
  Format.printf "of the system — only the affected transaction saw extra rounds.@."
